"""The persistent run registry (``repro-runlog-record`` v1).

Every CLI invocation run with ``--runlog DIR`` (or ``REPRO_RUNLOG`` in
the environment) appends one schema-versioned, checksummed record to the
registry: what ran (command, argument digest, machine/workload
identity), how it ended (outcome, exit code, fallback rung served,
budget consumption), and what it measured (a
:class:`~repro.query.work.WorkCounters` snapshot by currency plus
schedule quality).  Where a ``BENCH_*.json`` file is one deliberate
snapshot, the runlog is the *longitudinal* record — the series the
``repro runs trend`` changepoint detector and the OpenMetrics scrape
surface (:mod:`repro.obs.openmetrics`) read.

Crash safety follows the artifact store's discipline, one granularity
down: each record is its *own* file, written atomically via
:mod:`repro._atomic` with an embedded SHA-256 over its canonical
payload.  Appending never rewrites existing records, a torn process
leaves either a complete record or none, and a corrupt record is
reported structurally (:attr:`RunRecord.corrupt`) instead of poisoning
the registry.  The clock is injectable (``REPRO_RUNLOG_CLOCK`` pins it
from the environment) so tests and the fuzz no-wall-clock rule get
byte-identical records.

See ``docs/runs.md``.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import time
from dataclasses import dataclass, field
from random import Random
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro._atomic import atomic_write_text
from repro.errors import RunlogError

RUNLOG_SCHEMA_NAME = "repro-runlog-record"
RUNLOG_SCHEMA_VERSION = 1

#: Environment variable naming the default registry directory.
ENV_RUNLOG = "REPRO_RUNLOG"
#: Environment variable pinning the registry clock to a fixed value —
#: the injectable-clock hook for byte-identical CI re-runs and the fuzz
#: suite's no-wall-clock rule.
ENV_RUNLOG_CLOCK = "REPRO_RUNLOG_CLOCK"

_RECORD_RE = re.compile(r"^run-(\d{8})-([0-9a-f]{8})\.json$")


def record_digest(record: Dict[str, object]) -> str:
    """SHA-256 over the record's canonical payload (``sha256`` excluded)."""
    payload = {k: v for k, v in record.items() if k != "sha256"}
    canonical = json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def args_digest(arguments: Dict[str, object]) -> str:
    """Stable 16-hex digest of a command's argument namespace.

    Non-JSON values (callables, objects) degrade to their ``repr`` type
    name so the digest stays deterministic across processes.
    """

    def scrub(value: object) -> object:
        if isinstance(value, (str, int, float, bool)) or value is None:
            return value
        if isinstance(value, (list, tuple)):
            return [scrub(v) for v in value]
        if isinstance(value, dict):
            return {str(k): scrub(v) for k, v in sorted(value.items())}
        return type(value).__name__
    canonical = json.dumps(
        scrub(dict(arguments)), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def default_clock() -> Callable[[], float]:
    """The registry clock: ``time.time`` unless the environment pins it."""
    pinned = os.environ.get(ENV_RUNLOG_CLOCK)
    if pinned is None:
        return time.time
    try:
        value = float(pinned)
    except ValueError:
        raise RunlogError(
            "%s must be a number, got %r" % (ENV_RUNLOG_CLOCK, pinned)
        )
    return lambda: value


@dataclass
class RunRecord:
    """One loaded registry record (possibly corrupt)."""

    seq: int
    path: str
    data: Dict[str, object] = field(default_factory=dict)
    corrupt: bool = False
    error: str = ""

    @property
    def command(self) -> str:
        return str(self.data.get("command", "?"))

    @property
    def outcome(self) -> str:
        return str(self.data.get("outcome", "?"))

    def units(self) -> Dict[str, float]:
        work = self.data.get("work") or {}
        units = work.get("units") if isinstance(work, dict) else {}
        return dict(units) if isinstance(units, dict) else {}

    def calls(self) -> Dict[str, float]:
        work = self.data.get("work") or {}
        calls = work.get("calls") if isinstance(work, dict) else {}
        return dict(calls) if isinstance(calls, dict) else {}

    def quality(self) -> Dict[str, float]:
        quality = self.data.get("quality") or {}
        return dict(quality) if isinstance(quality, dict) else {}

    def metric(self, name: str) -> Optional[float]:
        """Resolve a dotted metric name against this record.

        ``units.<currency>`` / ``calls.<currency>`` read the work
        snapshot, ``quality.<key>`` the schedule quality, and the bare
        names ``duration_s`` / ``exit_code`` / ``total_units`` the
        record envelope.
        """
        prefix, _, rest = name.partition(".")
        if prefix == "units" and rest:
            value = self.units().get(rest)
        elif prefix == "calls" and rest:
            value = self.calls().get(rest)
        elif prefix == "quality" and rest:
            value = self.quality().get(rest)
        elif name == "total_units":
            value = sum(self.units().values()) or None
            if not self.units():
                value = None
        elif name in ("duration_s", "exit_code"):
            value = self.data.get(name)
        else:
            raise RunlogError(
                "unknown runlog metric %r (use units.<currency>,"
                " calls.<currency>, quality.<key>, total_units,"
                " duration_s, or exit_code)" % name
            )
        if value is None:
            return None
        return float(value)


class RunRecorder:
    """Accumulates one invocation's observations into a record.

    The CLI creates one recorder per command when the runlog is enabled;
    command bodies contribute what they know (machine, workload, work
    counters, quality, rung) via :meth:`note` / :meth:`add_work` /
    :meth:`merge_quality`, and ``main()`` finalizes with the outcome and
    appends.  All merges are additive and order-independent so a command
    can contribute per-loop results incrementally.
    """

    def __init__(
        self,
        command: str,
        arguments: Optional[Dict[str, object]] = None,
        clock: Optional[Callable[[], float]] = None,
    ):
        self.command = command
        self.argv_digest = args_digest(arguments or {})
        self._clock = clock if clock is not None else default_clock()
        self._started = self._clock()
        self.fields: Dict[str, object] = {}
        self.units: Dict[str, float] = {}
        self.calls: Dict[str, float] = {}
        self.quality: Dict[str, float] = {}

    def note(self, **fields: object) -> None:
        """Set free-form envelope fields (machine, workload, rung, ...)."""
        self.fields.update(fields)

    def add_work(self, work) -> None:
        """Merge a :class:`~repro.query.work.WorkCounters` snapshot."""
        for currency, value in work.units.items():
            self.units[currency] = self.units.get(currency, 0) + value
        for currency, value in work.calls.items():
            self.calls[currency] = self.calls.get(currency, 0) + value

    def add_units(self, units: Dict[str, float]) -> None:
        for currency, value in units.items():
            self.units[currency] = self.units.get(currency, 0) + value

    def merge_quality(self, quality: Dict[str, float]) -> None:
        for key, value in quality.items():
            self.quality[key] = self.quality.get(key, 0) + value

    def finalize(self, outcome: str, exit_code: int) -> Dict[str, object]:
        """The finished record payload (checksum added on append)."""
        now = self._clock()
        record: Dict[str, object] = {
            "schema": RUNLOG_SCHEMA_NAME,
            "version": RUNLOG_SCHEMA_VERSION,
            "command": self.command,
            "argv_digest": self.argv_digest,
            "ts": self._started,
            "duration_s": max(0.0, now - self._started),
            "outcome": outcome,
            "exit_code": exit_code,
        }
        for key, value in sorted(self.fields.items()):
            record[key] = value
        record["work"] = {
            "units": dict(sorted(self.units.items())),
            "calls": dict(sorted(self.calls.items())),
        }
        if self.quality:
            quality = dict(sorted(self.quality.items()))
            if "ii_total" in quality and "mii_total" in quality and (
                "mii_gap" not in quality
            ):
                quality["mii_gap"] = (
                    quality["ii_total"] - quality["mii_total"]
                )
            record["quality"] = quality
        return record


class RunLog:
    """The append-only registry over one directory."""

    def __init__(self, directory: str,
                 clock: Optional[Callable[[], float]] = None):
        self.directory = directory
        self._clock = clock if clock is not None else default_clock()

    # -- writing -------------------------------------------------------
    def _record_files(self) -> List[Tuple[int, str]]:
        try:
            names = os.listdir(self.directory)
        except OSError:
            return []
        found = []
        for name in names:
            match = _RECORD_RE.match(name)
            if match:
                found.append(
                    (int(match.group(1)),
                     os.path.join(self.directory, name))
                )
        return sorted(found)

    def next_seq(self) -> int:
        files = self._record_files()
        return files[-1][0] + 1 if files else 1

    def append(self, record: Dict[str, object]) -> str:
        """Atomically write ``record`` as the next registry file.

        The record gains ``seq`` and its content checksum; existing
        records are never touched.  Returns the new record's path.
        """
        os.makedirs(self.directory, exist_ok=True)
        payload = dict(record)
        payload.setdefault("schema", RUNLOG_SCHEMA_NAME)
        payload.setdefault("version", RUNLOG_SCHEMA_VERSION)
        payload["seq"] = self.next_seq()
        digest = record_digest(payload)
        payload["sha256"] = digest
        path = os.path.join(
            self.directory,
            "run-%08d-%s.json" % (payload["seq"], digest[:8]),
        )
        atomic_write_text(
            path,
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
        )
        return path

    # -- reading -------------------------------------------------------
    def _load(self, seq: int, path: str) -> RunRecord:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, UnicodeDecodeError, ValueError) as exc:
            return RunRecord(
                seq=seq, path=path, corrupt=True,
                error="unreadable record: %s" % exc,
            )
        if not isinstance(data, dict):
            return RunRecord(
                seq=seq, path=path, corrupt=True,
                error="record is not a JSON object",
            )
        if data.get("schema") != RUNLOG_SCHEMA_NAME or (
            data.get("version") != RUNLOG_SCHEMA_VERSION
        ):
            return RunRecord(
                seq=seq, path=path, data=data, corrupt=True,
                error="schema %r v%r, expected %s v%d" % (
                    data.get("schema"), data.get("version"),
                    RUNLOG_SCHEMA_NAME, RUNLOG_SCHEMA_VERSION,
                ),
            )
        expected = data.get("sha256")
        actual = record_digest(data)
        if actual != expected:
            return RunRecord(
                seq=seq, path=path, data=data, corrupt=True,
                error="checksum mismatch (expected %s, actual %s)"
                % (expected, actual),
            )
        return RunRecord(seq=seq, path=path, data=data)

    def records(self, include_corrupt: bool = True) -> List[RunRecord]:
        """All records in sequence order; corrupt ones flagged, not raised."""
        loaded = [
            self._load(seq, path) for seq, path in self._record_files()
        ]
        if include_corrupt:
            return loaded
        return [record for record in loaded if not record.corrupt]

    def tail(self, count: int) -> List[RunRecord]:
        records = self.records(include_corrupt=False)
        return records[-count:] if count else records

    def get(self, seq: int) -> RunRecord:
        for record in self.records():
            if record.seq == seq:
                return record
        raise RunlogError(
            "runlog %r has no record with seq %d" % (self.directory, seq),
            path=self.directory,
        )

    def series(
        self, metric: str, window: int = 0
    ) -> List[Tuple[int, float]]:
        """``(seq, value)`` pairs for a dotted metric, oldest first.

        Records that do not track the metric are skipped; ``window``
        keeps only the trailing N points.
        """
        points = []
        for record in self.records(include_corrupt=False):
            value = record.metric(metric)
            if value is not None:
                points.append((record.seq, value))
        return points[-window:] if window else points

    # -- retention -----------------------------------------------------
    def gc(
        self, keep: int, prune_corrupt: bool = False
    ) -> List[str]:
        """Delete the oldest records beyond ``keep`` (and, optionally,
        corrupt ones regardless of age).  Returns the removed paths."""
        if keep < 0:
            raise RunlogError("gc keep must be >= 0, got %d" % keep)
        removed: List[str] = []
        records = self.records()
        if prune_corrupt:
            for record in records:
                if record.corrupt:
                    os.unlink(record.path)
                    removed.append(record.path)
            records = [r for r in records if not r.corrupt]
        excess = len(records) - keep
        for record in records[:max(0, excess)]:
            os.unlink(record.path)
            removed.append(record.path)
        return removed


# ----------------------------------------------------------------------
# Trend detection: seeded single-changepoint test over a metric series
# ----------------------------------------------------------------------
@dataclass
class Changepoint:
    """One detected level shift in a metric series."""

    metric: str
    #: Registry sequence number of the first record *after* the shift.
    seq: int
    #: Index of that record within the analyzed window.
    index: int
    before: float
    after: float
    score: float
    p_value: float
    direction: str  # "regression" | "improvement"

    @property
    def ratio(self) -> Optional[float]:
        if not self.before:
            return None
        return self.after / self.before

    def to_dict(self) -> Dict[str, object]:
        return {
            "metric": self.metric,
            "seq": self.seq,
            "index": self.index,
            "before": self.before,
            "after": self.after,
            "ratio": self.ratio,
            "score": self.score,
            "p_value": self.p_value,
            "direction": self.direction,
        }


def _split_stat(values: List[float], k: int) -> float:
    """CUSUM-style statistic for a split before index ``k``."""
    n = len(values)
    before = values[:k]
    after = values[k:]
    mean_before = sum(before) / len(before)
    mean_after = sum(after) / len(after)
    weight = (len(before) * len(after) / n) ** 0.5
    return abs(mean_after - mean_before) * weight


def _best_split(values: List[float]) -> Tuple[int, float]:
    best_k, best_stat = 1, -1.0
    for k in range(1, len(values)):
        stat = _split_stat(values, k)
        if stat > best_stat:
            best_k, best_stat = k, stat
    return best_k, best_stat


def detect_changepoint(
    points: Iterable[Tuple[int, float]],
    metric: str,
    seed: int = 0,
    permutations: int = 200,
    alpha: float = 0.05,
    min_ratio: float = 1.02,
    bigger_is_better: bool = False,
) -> Optional[Changepoint]:
    """Detect the most likely level shift in a metric series, or ``None``.

    The statistic is the classic single-changepoint CUSUM (the maximal
    weighted mean difference over every split); significance comes from
    a *seeded* permutation test — the observed statistic is compared to
    the same statistic over ``permutations`` shuffles drawn from
    ``random.Random("trend:<seed>")``, so the verdict is deterministic
    per seed and needs no distributional assumptions.  Shifts whose
    level ratio stays inside ``min_ratio`` are ignored (a 0.1-unit drift
    on a million-unit series is not a changepoint worth waking anyone
    for).  Direction follows the bench comparator's polarity: for most
    metrics bigger is a regression; pass ``bigger_is_better`` for
    ``quality.loops_at_mii``-style metrics.
    """
    points = list(points)
    if len(points) < 4:
        return None
    values = [value for _seq, value in points]
    split, observed = _best_split(values)
    if observed <= 0.0:
        return None
    before = values[:split]
    after = values[split:]
    mean_before = sum(before) / len(before)
    mean_after = sum(after) / len(after)
    low, high = sorted((abs(mean_before), abs(mean_after)))
    if high <= low * min_ratio:
        return None
    rng = Random("trend:%d:%s" % (seed, metric))
    shuffled = list(values)
    exceed = 0
    for _ in range(permutations):
        rng.shuffle(shuffled)
        _k, stat = _best_split(shuffled)
        if stat >= observed:
            exceed += 1
    p_value = (exceed + 1) / (permutations + 1)
    if p_value > alpha:
        return None
    worse = mean_after > mean_before
    if bigger_is_better:
        worse = not worse
    return Changepoint(
        metric=metric,
        seq=points[split][0],
        index=split,
        before=mean_before,
        after=mean_after,
        score=observed,
        p_value=p_value,
        direction="regression" if worse else "improvement",
    )


__all__ = [
    "ENV_RUNLOG",
    "ENV_RUNLOG_CLOCK",
    "RUNLOG_SCHEMA_NAME",
    "RUNLOG_SCHEMA_VERSION",
    "Changepoint",
    "RunLog",
    "RunRecord",
    "RunRecorder",
    "args_digest",
    "default_clock",
    "detect_changepoint",
    "record_digest",
]
