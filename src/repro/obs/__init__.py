"""Observability: spans, counters, events, and exporters (``repro.obs``).

The measurement substrate for every performance claim in this repo.  A
process-global :class:`Tracer` can be activated around any workload; the
reduction pipeline, both schedulers, and the contention query modules
emit spans/events/counters into it, and three exporters render the
result (text summary, schema-versioned metrics JSON, Chrome
``trace_event`` JSON for Perfetto).  With no tracer active every
instrumentation site is a single ``None`` check — see
``docs/observability.md`` and ``tests/test_obs_overhead.py``.

Beyond the per-run tracer, the package hosts the durable plane: the
append-only run registry (:mod:`repro.obs.runlog`), the background
sampling profiler (:mod:`repro.obs.sampler`), and the OpenMetrics
exporter (:mod:`repro.obs.openmetrics`) — see ``docs/runs.md``.

This package is a *leaf*: it never imports the query/scheduler/core
layers (they import it).  The one exception, the ``repro profile``
pipeline, lives in :mod:`repro.obs.profile` and is intentionally not
re-exported here.
"""

from repro.obs.export import (
    METRICS_SCHEMA_NAME,
    METRICS_SCHEMA_VERSION,
    chrome_trace_document,
    collapsed_stack_lines,
    exclusive_times,
    metrics_document,
    query_summary,
    render_text,
    write_chrome_trace,
    write_collapsed_stack,
    write_metrics,
)
from repro.obs.instrument import QUERY_FUNCTIONS, observed_class
from repro.obs.ledger import DecisionLedger, LedgerRecord
from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    TimerStats,
    units_per_second,
)
from repro.obs.openmetrics import (
    metrics_to_openmetrics,
    runlog_to_openmetrics,
    validate_openmetrics,
    write_openmetrics,
)
from repro.obs.provenance import (
    attempt_summaries,
    blame_counts,
    pressure_histogram,
    summarize,
)
from repro.obs.runlog import (
    RUNLOG_SCHEMA_NAME,
    RUNLOG_SCHEMA_VERSION,
    Changepoint,
    RunLog,
    RunRecord,
    RunRecorder,
    detect_changepoint,
)
from repro.obs.sampler import StackSampler
from repro.obs.trace import (
    CAT_AUTOMATA,
    CAT_PROFILE,
    CAT_QUERY,
    CAT_REDUCE,
    CAT_RESILIENCE,
    CAT_SCHED,
    EventRecord,
    SpanRecord,
    Tracer,
    count,
    current,
    enabled,
    event,
    span,
    start,
    stop,
    tracing,
)

__all__ = [
    "CAT_AUTOMATA",
    "CAT_PROFILE",
    "CAT_QUERY",
    "CAT_REDUCE",
    "CAT_RESILIENCE",
    "CAT_SCHED",
    "Changepoint",
    "DecisionLedger",
    "EventRecord",
    "Histogram",
    "METRICS_SCHEMA_NAME",
    "METRICS_SCHEMA_VERSION",
    "LedgerRecord",
    "MetricsRegistry",
    "QUERY_FUNCTIONS",
    "RUNLOG_SCHEMA_NAME",
    "RUNLOG_SCHEMA_VERSION",
    "RunLog",
    "RunRecord",
    "RunRecorder",
    "SpanRecord",
    "StackSampler",
    "TimerStats",
    "Tracer",
    "attempt_summaries",
    "blame_counts",
    "chrome_trace_document",
    "collapsed_stack_lines",
    "count",
    "current",
    "detect_changepoint",
    "enabled",
    "event",
    "exclusive_times",
    "metrics_document",
    "metrics_to_openmetrics",
    "observed_class",
    "pressure_histogram",
    "query_summary",
    "render_text",
    "runlog_to_openmetrics",
    "span",
    "start",
    "stop",
    "summarize",
    "tracing",
    "units_per_second",
    "validate_openmetrics",
    "write_chrome_trace",
    "write_collapsed_stack",
    "write_metrics",
    "write_openmetrics",
]
