"""Observed query-module classes.

:func:`observed_class` derives, per representation class, a subclass whose
four basic functions (``check`` / ``assign`` / ``assign&free`` / ``free``)
are timed and accounted against the active tracer.  The derivation is
cached, and :func:`repro.query.modulo.make_query_module` only selects the
observed subclass *while a tracer is active* — an untraced run constructs
the plain class and executes the exact original method bytecode, which is
what keeps the disabled-path overhead at zero (tested by
``tests/test_obs_overhead.py``).

The observed methods read the work-unit delta out of the module's own
:class:`~repro.query.work.WorkCounters` after each call, so wall time,
call counts, and work units land in one registry under ``query.<fn>``
keys and exporters can derive units-per-second directly.

``repro.obs`` stays import-independent of ``repro.query`` (the factory
imports *us*), so the function names are declared here and checked
against :data:`repro.query.work.FUNCTIONS` by the test-suite.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, Type

from repro.obs.trace import current

#: Basic-function names — must mirror ``repro.query.work.FUNCTIONS``.
QUERY_CHECK = "check"
QUERY_ASSIGN = "assign"
QUERY_ASSIGN_FREE = "assign&free"
QUERY_FREE = "free"
QUERY_CHECK_RANGE = "check_range"
QUERY_COMPILE = "compile"
QUERY_ATTRIBUTE = "attribute"
#: Sampling-profiler ticks (:mod:`repro.obs.sampler`).  Not a query
#: method — no observed override exists — but the currency shares the
#: units registry (``query.sample.units``) so exporters and the bench
#: comparator see sampler work next to query work.
QUERY_SAMPLE = "sample"
#: Columnar batch-plane kernels (:mod:`repro.query.batch`): the bulk
#: entry points (``check_matrix`` / ``first_free_bulk``) get observed
#: overrides; column maintenance inside ``assign``/``free`` shares the
#: currency and is visible through those timers' unit deltas.
QUERY_BATCH = "batch"
QUERY_FUNCTIONS = (
    QUERY_CHECK,
    QUERY_ASSIGN,
    QUERY_ASSIGN_FREE,
    QUERY_FREE,
    QUERY_CHECK_RANGE,
    QUERY_COMPILE,
    QUERY_ATTRIBUTE,
    QUERY_SAMPLE,
    QUERY_BATCH,
)
#: Timer name for ``first_free`` — its kernel work is charged in the
#: ``check_range`` unit currency, but wall time gets its own key so the
#: scan kernels are distinguishable in exports.
QUERY_FIRST_FREE = "first_free"

_OBSERVED: Dict[type, type] = {}


def _timed(method_name: str, function: str, units_function: str = None):
    """Build an observed override for one basic function.

    ``units_function`` names the :class:`~repro.query.work.WorkCounters`
    key whose delta is attributed to the call; it defaults to
    ``function`` (the timer key) and only differs for the batched scan
    kernels, whose work is charged in the ``check_range`` currency while
    ``check_range`` and ``first_free`` keep separate timers.
    """
    if units_function is None:
        units_function = function

    def observed(self, *args, **kwargs):
        tracer = current()
        inner = getattr(super(type(self), self), method_name)
        if tracer is None:
            return inner(*args, **kwargs)
        units_before = self.work.units[units_function]
        start = perf_counter()
        result = inner(*args, **kwargs)
        duration = perf_counter() - start
        op = args[0] if args and isinstance(args[0], str) else None
        cycle = args[1] if op is not None and len(args) > 1 else None
        tracer.record_query(
            function,
            start,
            duration,
            self.work.units[units_function] - units_before,
            op=op,
            cycle=cycle,
        )
        return result

    observed.__name__ = method_name
    observed.__qualname__ = "observed_" + method_name
    return observed


def observed_class(cls: Type) -> Type:
    """The observed subclass of a query-module class (cached).

    The subclass overrides the public basic functions plus the batched
    scan entry points; ``check_with_alternatives`` and
    ``first_free_with_alternatives`` are *not* wrapped because they are
    loops of ``check`` / ``first_free`` calls — wrapping them too would
    double-count.
    """
    try:
        return _OBSERVED[cls]
    except KeyError:
        pass
    namespace = {
        "__doc__": "Observed %s (see repro.obs.instrument)." % cls.__name__,
        "check": _timed("check", QUERY_CHECK),
        "assign": _timed("assign", QUERY_ASSIGN),
        "assign_free": _timed("assign_free", QUERY_ASSIGN_FREE),
        "free": _timed("free", QUERY_FREE),
        "check_range": _timed("check_range", QUERY_CHECK_RANGE),
        "first_free": _timed(
            "first_free", QUERY_FIRST_FREE, units_function=QUERY_CHECK_RANGE
        ),
        "check_attributed": _timed("check_attributed", QUERY_ATTRIBUTE),
        "check_matrix": _timed("check_matrix", QUERY_BATCH),
        "first_free_bulk": _timed("first_free_bulk", QUERY_BATCH),
    }
    derived = type("Observed" + cls.__name__, (cls,), namespace)
    _OBSERVED[cls] = derived
    return derived


__all__ = [
    "QUERY_ASSIGN",
    "QUERY_ASSIGN_FREE",
    "QUERY_ATTRIBUTE",
    "QUERY_BATCH",
    "QUERY_CHECK",
    "QUERY_CHECK_RANGE",
    "QUERY_COMPILE",
    "QUERY_FIRST_FREE",
    "QUERY_FREE",
    "QUERY_FUNCTIONS",
    "QUERY_SAMPLE",
    "observed_class",
]
