"""OpenMetrics / Prometheus textfile exporter.

Renders the repo's two durable metric sources — a ``repro-obs-metrics``
JSON document and the run registry (:mod:`repro.obs.runlog`) — in the
OpenMetrics text exposition format, suitable for the Prometheus
node-exporter textfile collector or a future service daemon's
``/metrics`` endpoint.

The format contract (enforced by :func:`validate_openmetrics` and the
test-suite):

* every metric family is declared with ``# TYPE name type`` before its
  first sample;
* sample lines are ``name{label="value",...} number``;
* counter families end in ``_total``; histogram families expose
  cumulative ``name_bucket{le="..."}`` samples, a ``+Inf`` bucket, and
  ``name_count`` / ``name_sum``;
* the exposition ends with ``# EOF``.

All metric and label names are sanitized to ``[a-zA-Z_][a-zA-Z0-9_]*``;
the repo's dotted registry keys (``query.check.units``) become
underscore-joined names under the ``repro_`` prefix.
"""

from __future__ import annotations

import re
import sys
from typing import Dict, Iterable, List, Sequence, Tuple

from repro._atomic import atomic_write_text
from repro.obs.runlog import RunRecord

_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_][a-zA-Z0-9_]*"                       # metric name
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"\n]*\""        # first label
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"\n]*\")*\})?"   # more labels
    r" -?([0-9]*\.?[0-9]+([eE][+-]?[0-9]+)?|[+]?Inf|NaN)$"
)
_TYPE_RE = re.compile(
    r"^# TYPE ([a-zA-Z_][a-zA-Z0-9_]*) (gauge|counter|histogram|"
    r"summary|info|unknown)$"
)


def sanitize_name(name: str) -> str:
    """Coerce a registry key into a legal metric/label name."""
    cleaned = re.sub(r"[^a-zA-Z0-9_]", "_", name)
    if not cleaned or not re.match(r"^[a-zA-Z_]", cleaned):
        cleaned = "_" + cleaned
    return cleaned


def _format_value(value: float) -> str:
    number = float(value)
    if number == int(number) and abs(number) < 1e15:
        return "%d" % int(number)
    return repr(number)


def _labels(pairs: Sequence[Tuple[str, object]]) -> str:
    if not pairs:
        return ""
    rendered = ",".join(
        '%s="%s"' % (
            sanitize_name(key),
            str(value).replace("\\", "\\\\").replace('"', '\\"'),
        )
        for key, value in pairs
    )
    return "{%s}" % rendered


class _Exposition:
    """Accumulates families in declaration order, one TYPE line each."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self._declared: Dict[str, str] = {}

    def declare(self, name: str, kind: str) -> str:
        name = sanitize_name(name)
        if name not in self._declared:
            self._declared[name] = kind
            self.lines.append("# TYPE %s %s" % (name, kind))
        return name

    def sample(
        self,
        family: str,
        value: float,
        labels: Sequence[Tuple[str, object]] = (),
        suffix: str = "",
    ) -> None:
        self.lines.append(
            "%s%s%s %s"
            % (family, suffix, _labels(labels), _format_value(value))
        )

    def render(self) -> str:
        return "\n".join(self.lines + ["# EOF"]) + "\n"


def _histogram_samples(
    out: _Exposition,
    family: str,
    hist: Dict[str, object],
    labels: Sequence[Tuple[str, object]] = (),
) -> None:
    """Cumulative ``_bucket``/``_count``/``_sum`` samples for one
    ``Histogram.to_dict`` payload (sparse ``le_us`` buckets)."""
    cumulative = 0
    for bucket in hist.get("buckets", []):
        cumulative += bucket["count"]
        out.sample(
            family,
            cumulative,
            tuple(labels) + (("le", _format_value(bucket["le_us"] / 1e6)),),
            suffix="_bucket",
        )
    total = hist.get("count", cumulative + hist.get("overflow", 0))
    out.sample(
        family, total, tuple(labels) + (("le", "+Inf"),), suffix="_bucket"
    )
    out.sample(family, total, labels, suffix="_count")
    # The power-of-two histogram does not keep an exact sum; the p50
    # midpoint estimate keeps the family structurally complete without
    # inventing precision.
    estimate = hist.get("p50_us", 0.0) / 1e6 * total
    out.sample(family, estimate, labels, suffix="_sum")


# ----------------------------------------------------------------------
# Metrics-document rendering
# ----------------------------------------------------------------------
def metrics_to_openmetrics(
    document: Dict[str, object], prefix: str = "repro"
) -> str:
    """Render a ``repro-obs-metrics`` document as OpenMetrics text.

    Counters become ``<prefix>_<name>_total`` counter families; timers
    become a seconds-total counter plus a calls-total counter; histograms
    become cumulative-bucket histogram families.  The document's ``meta``
    renders as one ``<prefix>_meta`` info-style gauge carrying the
    metadata as labels.
    """
    out = _Exposition()
    meta = document.get("meta") or {}
    if isinstance(meta, dict) and meta:
        family = out.declare("%s_meta" % prefix, "gauge")
        out.sample(family, 1, tuple(sorted(meta.items())))
    counters = document.get("counters") or {}
    for name, value in sorted(counters.items()):
        family = out.declare(
            "%s_%s_total" % (prefix, sanitize_name(name)), "counter"
        )
        out.sample(family, value)
    timers = document.get("timers") or {}
    for name, timer in sorted(timers.items()):
        base = "%s_%s" % (prefix, sanitize_name(name))
        family = out.declare(base + "_seconds_total", "counter")
        out.sample(family, timer.get("total_s", 0.0))
        family = out.declare(base + "_calls_total", "counter")
        out.sample(family, timer.get("count", 0))
    histograms = document.get("histograms") or {}
    for name, hist in sorted(histograms.items()):
        family = out.declare(
            "%s_%s_seconds" % (prefix, sanitize_name(name)), "histogram"
        )
        _histogram_samples(out, family, hist)
    return out.render()


# ----------------------------------------------------------------------
# Runlog rendering
# ----------------------------------------------------------------------
def runlog_to_openmetrics(
    records: Iterable[RunRecord], prefix: str = "repro_runs"
) -> str:
    """Aggregate registry records into an OpenMetrics exposition.

    Totals are labelled by ``command`` (and ``currency`` for work units),
    outcome counts by ``command``/``outcome`` — the shape a dashboard
    needs to plot work-per-currency and failure rates over scrapes.
    Corrupt records are excluded from every total but surfaced in their
    own counter so damage is visible on the dashboard too.
    """
    records = list(records)
    corrupt = sum(1 for record in records if record.corrupt)
    good = [record for record in records if not record.corrupt]

    outcomes: Dict[Tuple[str, str], int] = {}
    duration: Dict[str, float] = {}
    units: Dict[Tuple[str, str], float] = {}
    calls: Dict[Tuple[str, str], float] = {}
    quality: Dict[Tuple[str, str], float] = {}
    last_seq = 0
    for record in good:
        command = record.command
        key = (command, record.outcome)
        outcomes[key] = outcomes.get(key, 0) + 1
        duration[command] = duration.get(command, 0.0) + float(
            record.data.get("duration_s", 0.0)
        )
        for currency, value in record.units().items():
            ckey = (command, currency)
            units[ckey] = units.get(ckey, 0.0) + value
        for currency, value in record.calls().items():
            ckey = (command, currency)
            calls[ckey] = calls.get(ckey, 0.0) + value
        for name, value in record.quality().items():
            qkey = (command, name)
            quality[qkey] = quality.get(qkey, 0.0) + value
        last_seq = max(last_seq, record.seq)

    out = _Exposition()
    family = out.declare("%s_records" % prefix, "gauge")
    out.sample(family, len(good))
    family = out.declare("%s_corrupt_records" % prefix, "gauge")
    out.sample(family, corrupt)
    family = out.declare("%s_last_seq" % prefix, "gauge")
    out.sample(family, last_seq)
    family = out.declare("%s_outcomes_total" % prefix, "counter")
    for (command, outcome), count in sorted(outcomes.items()):
        out.sample(
            family, count, (("command", command), ("outcome", outcome))
        )
    family = out.declare("%s_duration_seconds_total" % prefix, "counter")
    for command, total in sorted(duration.items()):
        out.sample(family, total, (("command", command),))
    family = out.declare("%s_work_units_total" % prefix, "counter")
    for (command, currency), total in sorted(units.items()):
        out.sample(
            family, total, (("command", command), ("currency", currency))
        )
    family = out.declare("%s_work_calls_total" % prefix, "counter")
    for (command, currency), total in sorted(calls.items()):
        out.sample(
            family, total, (("command", command), ("currency", currency))
        )
    family = out.declare("%s_quality_total" % prefix, "counter")
    for (command, name), total in sorted(quality.items()):
        out.sample(
            family, total, (("command", command), ("metric", name))
        )
    return out.render()


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------
def validate_openmetrics(text: str) -> List[str]:
    """Structural line-format check; returns problems (empty = valid).

    Enforces the subset this module promises: legal sample lines, every
    sampled family declared by a ``# TYPE`` line *before* first use, no
    duplicate declarations, and a terminal ``# EOF``.
    """
    problems: List[str] = []
    lines = text.splitlines()
    if not lines or lines[-1] != "# EOF":
        problems.append("exposition must end with '# EOF'")
    declared: Dict[str, str] = {}
    for number, line in enumerate(lines, 1):
        if not line:
            problems.append("line %d: blank line" % number)
            continue
        if line == "# EOF":
            if number != len(lines):
                problems.append("line %d: '# EOF' before end" % number)
            continue
        if line.startswith("#"):
            match = _TYPE_RE.match(line)
            if match is None:
                if not line.startswith(("# HELP ", "# UNIT ")):
                    problems.append(
                        "line %d: unrecognized comment %r" % (number, line)
                    )
                continue
            name = match.group(1)
            if name in declared:
                problems.append(
                    "line %d: duplicate TYPE for %s" % (number, name)
                )
            declared[name] = match.group(2)
            continue
        if _SAMPLE_RE.match(line) is None:
            problems.append(
                "line %d: malformed sample %r" % (number, line)
            )
            continue
        name = re.split(r"[{ ]", line, maxsplit=1)[0]
        family = name
        for suffix in ("_bucket", "_count", "_sum", "_total"):
            if name.endswith(suffix) and name[: -len(suffix)] in declared:
                family = name[: -len(suffix)]
                break
        if family not in declared and name not in declared:
            problems.append(
                "line %d: sample %r has no preceding TYPE" % (number, name)
            )
    return problems


def write_openmetrics(text: str, path: str) -> None:
    """Write an exposition to ``path`` (``"-"`` for stdout)."""
    if path == "-":
        sys.stdout.write(text)
        return
    atomic_write_text(path, text)


__all__ = [
    "metrics_to_openmetrics",
    "runlog_to_openmetrics",
    "sanitize_name",
    "validate_openmetrics",
    "write_openmetrics",
]
