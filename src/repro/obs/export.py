"""Exporters: text summary, schema-versioned metrics JSON, Chrome trace.

Three views over one :class:`~repro.obs.trace.Tracer`:

* :func:`render_text` — the per-phase time/work breakdown printed by
  ``repro profile``;
* :func:`metrics_document` — a stable JSON document (schema version
  :data:`METRICS_SCHEMA_VERSION`, documented in ``docs/observability.md``)
  for dashboards and the ``BENCH_*.json`` perf trajectory;
* :func:`chrome_trace_document` — Chrome ``trace_event`` JSON that loads
  directly in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.
"""

from __future__ import annotations

import json
import sys
from typing import Dict, List, Optional

from repro._atomic import atomic_write_text
from repro.obs.instrument import QUERY_FUNCTIONS
from repro.obs.trace import Tracer

#: Version of the metrics JSON document.  Bump on breaking changes and
#: record the migration in docs/observability.md.
METRICS_SCHEMA_VERSION = 1
METRICS_SCHEMA_NAME = "repro-obs-metrics"


# ----------------------------------------------------------------------
# Metrics JSON
# ----------------------------------------------------------------------
def query_summary(tracer: Tracer) -> Dict[str, Dict[str, object]]:
    """Per-function query table: calls, wall time, units, throughput.

    Call counts and wall time come from the tracer's timers; work units
    come from the counters the observed query modules copy out of
    :class:`~repro.query.work.WorkCounters` — same registry, same keys,
    so units-per-second is a straight division.
    """
    summary: Dict[str, Dict[str, object]] = {}
    for function in QUERY_FUNCTIONS:
        name = "query." + function
        timer = tracer.metrics.timers.get(name)
        if timer is None or not timer.count:
            continue
        units = tracer.metrics.get_counter(name + ".units")
        hist = tracer.metrics.histograms.get(name)
        entry: Dict[str, object] = {
            "calls": timer.count,
            "wall_s": timer.total,
            "units": units,
            "units_per_call": units / timer.count,
            "us_per_call": timer.mean * 1e6,
        }
        entry["units_per_s"] = (
            units / timer.total if timer.total > 0 else None
        )
        if hist is not None and hist.count:
            entry["p50_us"] = hist.quantile(0.50)
            entry["p99_us"] = hist.quantile(0.99)
        summary[function] = entry
    return summary


def metrics_document(tracer: Tracer) -> Dict[str, object]:
    """The stable metrics JSON document (see ``docs/observability.md``)."""
    document: Dict[str, object] = {
        "schema": METRICS_SCHEMA_NAME,
        "version": METRICS_SCHEMA_VERSION,
        "meta": dict(tracer.meta),
        "records": {
            "spans": len(tracer.spans),
            "events": len(tracer.events),
            "dropped": tracer.dropped,
        },
        "queries": query_summary(tracer),
        "exclusive_s": {
            name: total
            for name, total in sorted(exclusive_times(tracer).items())
        },
    }
    document.update(tracer.metrics.to_dict())
    return document


# ----------------------------------------------------------------------
# Span nesting: exclusive (self) time and collapsed stacks
# ----------------------------------------------------------------------
def _walk_span_tree(tracer: Tracer):
    """Rebuild the span tree and yield ``(key, path, self_seconds)``.

    The schedulers are single-threaded, so recorded spans either nest
    properly or are disjoint; sorting by ``(start, -duration)`` visits
    each parent before its children and a running stack recovers the
    nesting.  Self time is a span's duration minus its direct children's
    (clamped at zero against float jitter).  Keys match the timer names
    (``category.name``) so exclusive totals line up with the inclusive
    timers in the same document.  Dropped records (``tracer.dropped``)
    make exclusive totals an over-estimate of the parents whose children
    were dropped — the text report flags that.
    """
    spans = sorted(tracer.spans, key=lambda s: (s.start, -s.duration))
    # Stack frames: [end, key, child_total, duration, path-tuple].
    stack: List[list] = []

    def pop_until(start: float):
        while stack and stack[-1][0] <= start:
            end, key, child_total, duration, path = stack.pop()
            if stack:
                stack[-1][2] += duration
            yield key, path, max(0.0, duration - child_total)

    for span in spans:
        for item in pop_until(span.start):
            yield item
        key = "%s.%s" % (span.category, span.name)
        path = tuple(frame[1] for frame in stack) + (key,)
        stack.append(
            [span.start + span.duration, key, 0.0, span.duration, path]
        )
    for item in pop_until(float("inf")):
        yield item


def exclusive_times(tracer: Tracer) -> Dict[str, float]:
    """Total exclusive (self) seconds per span name.

    Complements the inclusive per-name timers: a parent phase that looks
    expensive but whose time is entirely spent inside instrumented
    children has a self time near zero, so cost lands where it is
    incurred instead of being misattributed to the enclosing phase.
    """
    totals: Dict[str, float] = {}
    for key, _path, self_s in _walk_span_tree(tracer):
        totals[key] = totals.get(key, 0.0) + self_s
    return totals


def collapsed_stack_lines(tracer: Tracer) -> List[str]:
    """The trace in collapsed-stack format (one ``a;b;c <value>`` per line).

    Consumable by standard flamegraph tooling (Brendan Gregg's
    ``flamegraph.pl``, speedscope, inferno): frames are span names
    (``category.name``) joined by ``;``, values are exclusive time in
    integer microseconds.  Per-query spans appear when the tracer ran
    with ``trace_queries``.
    """
    weights: Dict[tuple, float] = {}
    for _key, path, self_s in _walk_span_tree(tracer):
        weights[path] = weights.get(path, 0.0) + self_s
    lines = []
    for path in sorted(weights):
        value = int(round(weights[path] * 1e6))
        if value <= 0:
            continue
        lines.append("%s %d" % (";".join(path), value))
    return lines


def write_collapsed_stack(tracer: Tracer, path: str) -> None:
    """Write the collapsed-stack export to ``path`` (``"-"`` for stdout).

    A trace with no spans (or whose spans all round to zero exclusive
    microseconds) writes an empty file, not a lone blank line — standard
    flamegraph tooling treats blank lines as malformed frames.
    """
    lines = collapsed_stack_lines(tracer)
    text = "\n".join(lines) + "\n" if lines else ""
    if path == "-":
        sys.stdout.write(text)
        return
    atomic_write_text(path, text)


def write_metrics(tracer: Tracer, path: str) -> None:
    """Write the metrics document to ``path`` (``"-"`` for stdout)."""
    text = json.dumps(metrics_document(tracer), indent=2, sort_keys=True)
    if path == "-":
        sys.stdout.write(text + "\n")
        return
    atomic_write_text(path, text + "\n")


# ----------------------------------------------------------------------
# Chrome trace_event JSON
# ----------------------------------------------------------------------
def chrome_trace_document(tracer: Tracer) -> Dict[str, object]:
    """Chrome ``trace_event`` document (Perfetto-loadable).

    Spans become complete events (``ph: "X"``), instant events become
    ``ph: "i"``; timestamps are microseconds relative to the tracer's
    epoch.  Everything runs on one pid/tid — the schedulers are
    single-threaded, and one lane keeps the Perfetto view readable.
    """
    epoch = tracer.epoch
    trace_events: List[Dict[str, object]] = []
    for record in tracer.spans:
        entry: Dict[str, object] = {
            "name": record.name,
            "cat": record.category,
            "ph": "X",
            "ts": (record.start - epoch) * 1e6,
            "dur": record.duration * 1e6,
            "pid": 1,
            "tid": 1,
        }
        if record.args:
            entry["args"] = record.args
        trace_events.append(entry)
    for record in tracer.events:
        entry = {
            "name": record.name,
            "cat": record.category,
            "ph": "i",
            "ts": (record.ts - epoch) * 1e6,
            "pid": 1,
            "tid": 1,
            "s": "t",
        }
        if record.args:
            entry["args"] = record.args
        trace_events.append(entry)
    trace_events.sort(key=lambda e: e["ts"])
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "producer": "repro.obs",
            "dropped_records": tracer.dropped,
            **{str(k): str(v) for k, v in tracer.meta.items()},
        },
    }


def write_chrome_trace(tracer: Tracer, path: str) -> None:
    document = chrome_trace_document(tracer)
    atomic_write_text(path, json.dumps(document) + "\n")


# ----------------------------------------------------------------------
# Text summary
# ----------------------------------------------------------------------
def _format_si(value: Optional[float]) -> str:
    if value is None:
        return "-"
    for bound, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if value >= bound:
            return "%.2f%s" % (value / bound, suffix)
    return "%.2f" % value


def render_text(tracer: Tracer) -> str:
    """Human-readable per-phase time/work breakdown."""
    lines: List[str] = []
    if tracer.meta:
        lines.append(
            "profile: "
            + "  ".join(
                "%s=%s" % (k, v) for k, v in sorted(tracer.meta.items())
            )
        )
        lines.append("")

    phase_timers = [
        (name, timer)
        for name, timer in sorted(tracer.metrics.timers.items())
        if not name.startswith("query.")
    ]
    if phase_timers:
        exclusive = exclusive_times(tracer)
        lines.append("phases")
        lines.append(
            "  %-36s %8s %12s %12s %12s"
            % ("span", "count", "total ms", "self ms", "mean ms")
        )
        for name, timer in phase_timers:
            self_s = exclusive.get(name)
            # Timers observed without a stored span record (dropped past
            # the cap, or metrics-only observations) have no self time.
            self_ms = "%12.3f" % (self_s * 1e3) if self_s is not None \
                else "%12s" % "-"
            lines.append(
                "  %-36s %8d %12.3f %s %12.3f"
                % (name, timer.count, timer.total * 1e3, self_ms,
                   timer.mean * 1e3)
            )
        if tracer.dropped:
            lines.append(
                "  (self times incomplete: %d records dropped)"
                % tracer.dropped
            )
        lines.append("")

    queries = query_summary(tracer)
    if queries:
        lines.append("query functions")
        lines.append(
            "  %-12s %10s %10s %10s %10s %10s %9s"
            % ("function", "calls", "wall ms", "units",
               "units/call", "units/s", "us/call")
        )
        for function, entry in queries.items():
            lines.append(
                "  %-12s %10d %10.3f %10d %10.3f %10s %9.3f"
                % (
                    function,
                    entry["calls"],
                    entry["wall_s"] * 1e3,
                    entry["units"],
                    entry["units_per_call"],
                    _format_si(entry["units_per_s"]),
                    entry["us_per_call"],
                )
            )
        lines.append("")

    interesting = [
        (name, value)
        for name, value in sorted(tracer.metrics.counters.items())
        if not name.startswith("query.")
    ]
    if interesting:
        lines.append("counters")
        for name, value in interesting:
            lines.append("  %-36s %12g" % (name, value))
        lines.append("")

    lines.append(
        "records: %d spans, %d events, %d dropped"
        % (len(tracer.spans), len(tracer.events), tracer.dropped)
    )
    return "\n".join(lines)


__all__ = [
    "METRICS_SCHEMA_NAME",
    "METRICS_SCHEMA_VERSION",
    "chrome_trace_document",
    "collapsed_stack_lines",
    "exclusive_times",
    "metrics_document",
    "query_summary",
    "render_text",
    "write_chrome_trace",
    "write_collapsed_stack",
    "write_metrics",
]
