"""Background sampling stack profiler (stdlib-only, off by default).

The span tracer only sees code that was instrumented; the sampler is its
complement for *un-instrumented* hot paths.  A daemon timer thread
periodically snapshots every other thread's Python stack via
:func:`sys._current_frames` and accumulates root-first collapsed stacks,
so a ``repro profile --sample`` flamegraph shows where wall time went
even inside plain library code.

Each captured stack charges one unit of the SAMPLE currency through the
active tracer (``query.sample`` timer + ``query.sample.units`` counter —
the same registry keys every other currency uses), so sampling work is
visible in metrics JSON, the runlog, and the bench comparator.  A run
with the sampler off charges exactly zero SAMPLE units (guarded by
``tests/test_obs_overhead.py``).

Determinism hooks for tests: the frames provider and the tick loop are
both injectable — call :meth:`StackSampler.sample_once` with a synthetic
frames mapping and no thread ever starts.
"""

from __future__ import annotations

import os
import sys
import threading
from time import perf_counter
from typing import Callable, Dict, List, Optional, Tuple

from repro._atomic import atomic_write_text
from repro.obs.instrument import QUERY_SAMPLE
from repro.obs.trace import Tracer

#: Default wall-clock seconds between samples.  5 ms keeps the sampler
#: under the <5% overhead guard with plenty of margin while still
#: collecting hundreds of stacks per second of profiled work.
DEFAULT_INTERVAL_S = 0.005
#: Stacks deeper than this are truncated at the root end; the leaf
#: frames (where time is actually spent) are always kept.
DEFAULT_MAX_DEPTH = 64


def frame_label(frame) -> str:
    """One collapsed-stack frame label: ``file.py:function``."""
    code = frame.f_code
    return "%s:%s" % (os.path.basename(code.co_filename), code.co_name)


def stack_path(frame, max_depth: int = DEFAULT_MAX_DEPTH) -> Tuple[str, ...]:
    """Root-first frame labels for one thread's current stack."""
    labels: List[str] = []
    while frame is not None and len(labels) < max_depth:
        labels.append(frame_label(frame))
        frame = frame.f_back
    labels.reverse()
    return tuple(labels)


class StackSampler:
    """Periodic whole-process stack sampler.

    Parameters
    ----------
    interval_s:
        Seconds between samples; also the weight one sample contributes
        to the collapsed-stack export (a tick approximates
        ``interval_s`` of wall time on its stack).
    tracer:
        Tracer charged one SAMPLE unit per captured stack.  ``None``
        accumulates stacks without charging — the registry then shows
        zero ``sample`` units, exactly as if the sampler never ran.
    frames:
        Injectable provider returning a ``{thread_id: frame}`` mapping
        (the shape of :func:`sys._current_frames`).  Tests pass
        synthetic mappings for deterministic stacks.
    max_depth:
        Per-stack frame cap (root-end truncation).
    """

    def __init__(
        self,
        interval_s: float = DEFAULT_INTERVAL_S,
        tracer: Optional[Tracer] = None,
        frames: Optional[Callable[[], Dict[int, object]]] = None,
        max_depth: int = DEFAULT_MAX_DEPTH,
    ):
        if interval_s <= 0:
            raise ValueError(
                "sampler interval must be positive, got %r" % interval_s
            )
        self.interval_s = interval_s
        self.tracer = tracer
        self.max_depth = max_depth
        self._frames = frames if frames is not None else sys._current_frames
        self.counts: Dict[Tuple[str, ...], int] = {}
        self.samples = 0
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    # -- capture -------------------------------------------------------
    def sample_once(self) -> int:
        """Capture one snapshot of every other thread; returns stacks kept."""
        start = perf_counter()
        own = threading.get_ident()
        captured = 0
        for thread_id, frame in list(self._frames().items()):
            if thread_id == own:
                continue
            path = stack_path(frame, self.max_depth)
            if not path:
                continue
            self.counts[path] = self.counts.get(path, 0) + 1
            captured += 1
        duration = perf_counter() - start
        if captured:
            self.samples += captured
            if self.tracer is not None:
                self.tracer.record_query(
                    QUERY_SAMPLE, start, duration, captured
                )
        return captured

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.sample_once()

    # -- lifecycle -----------------------------------------------------
    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "StackSampler":
        if self.running:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=5 * self.interval_s + 1.0)

    def __enter__(self) -> "StackSampler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    # -- export --------------------------------------------------------
    def collapsed_lines(self, root: str = "sampler") -> List[str]:
        """Collapsed-stack lines weighted in estimated microseconds.

        Each sample approximates ``interval_s`` of wall time, so values
        share the unit of the span tracer's collapsed export and the two
        merge into one flamegraph.  Every stack is rooted under ``root``
        so sampled frames stay distinguishable from instrumented spans.
        """
        interval_us = self.interval_s * 1e6
        lines = []
        for path in sorted(self.counts):
            value = int(round(self.counts[path] * interval_us))
            if value <= 0:
                continue
            frames = (root,) + path if root else path
            lines.append("%s %d" % (";".join(frames), value))
        return lines

    def write_collapsed(self, path: str, root: str = "sampler") -> None:
        """Write the collapsed export to ``path`` (``"-"`` for stdout)."""
        lines = self.collapsed_lines(root=root)
        text = "\n".join(lines) + "\n" if lines else ""
        if path == "-":
            sys.stdout.write(text)
            return
        atomic_write_text(path, text)

    def __repr__(self) -> str:
        return "StackSampler(%d samples, %d stacks, %s)" % (
            self.samples,
            len(self.counts),
            "running" if self.running else "stopped",
        )


__all__ = [
    "DEFAULT_INTERVAL_S",
    "DEFAULT_MAX_DEPTH",
    "StackSampler",
    "frame_label",
    "stack_path",
]
