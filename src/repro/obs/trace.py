"""Spans, events, and the active-tracer switch.

The observability layer is *off by default* and its disabled path is
designed to cost as close to nothing as the interpreter allows:

* instrumentation sites call :func:`current` (one module-global read) and
  skip all bookkeeping when it returns ``None``;
* hot loops capture the tracer once (``tracer = obs.current()``) and
  guard each emission with a plain ``is not None`` test;
* the query-module factory only builds *observed* subclasses while a
  tracer is active, so an untraced scheduler run executes the exact
  pre-instrumentation bytecode of ``check``/``assign``/``free``
  (see ``tests/test_obs_overhead.py`` for the guard).

A :class:`Tracer` owns a :class:`~repro.obs.metrics.MetricsRegistry`
(unbounded-duration-safe aggregates) plus bounded lists of span and
instant-event records for the Chrome ``trace_event`` export.  When the
record cap is hit, new records are dropped and counted in
:attr:`Tracer.dropped` — aggregates keep accumulating regardless, so
metrics stay exact even when the trace is truncated.

Tracing state is process-global and not thread-safe by design (the
schedulers are single-threaded); see ``docs/observability.md``.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import Dict, List, Optional

from repro.obs.metrics import MetricsRegistry

#: Span/event categories used by the built-in instrumentation.
CAT_REDUCE = "reduce"
CAT_SCHED = "sched"
CAT_QUERY = "query"
CAT_AUTOMATA = "automata"
CAT_PROFILE = "profile"
CAT_RESILIENCE = "resilience"


class SpanRecord:
    """One completed span: a named duration with optional arguments."""

    __slots__ = ("name", "category", "start", "duration", "args")

    def __init__(self, name, category, start, duration, args=None):
        self.name = name
        self.category = category
        self.start = start
        self.duration = duration
        self.args = args

    def __repr__(self) -> str:
        return "SpanRecord(%r, %r, %.6fs)" % (
            self.name, self.category, self.duration,
        )


class EventRecord:
    """One instant event (Chrome ``ph: "i"``)."""

    __slots__ = ("name", "category", "ts", "args")

    def __init__(self, name, category, ts, args=None):
        self.name = name
        self.category = category
        self.ts = ts
        self.args = args

    def __repr__(self) -> str:
        return "EventRecord(%r, %r)" % (self.name, self.category)


class _SpanContext:
    """Context manager recording one span on exit."""

    __slots__ = ("_tracer", "_name", "_category", "_args", "_start")

    def __init__(self, tracer, name, category, args):
        self._tracer = tracer
        self._name = name
        self._category = category
        self._args = args
        self._start = 0.0

    def __enter__(self) -> "_SpanContext":
        self._start = perf_counter()
        return self

    def set(self, **args) -> None:
        """Attach/overwrite span arguments before the span closes."""
        if self._args is None:
            self._args = {}
        self._args.update(args)

    def __exit__(self, exc_type, exc, tb) -> bool:
        end = perf_counter()
        self._tracer.record_span(
            self._name,
            self._category,
            self._start,
            end - self._start,
            self._args,
        )
        return False


class _NullSpan:
    """Shared no-op span used whenever tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def set(self, **args) -> None:
        pass

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects spans, instant events, counters, and query timings.

    Parameters
    ----------
    max_records:
        Cap on stored span + event records (aggregated metrics are
        unaffected).  Chrome's trace viewer handles a few hundred
        thousand events comfortably; beyond the cap records are dropped
        and counted.
    trace_queries:
        Record one span per query-module call (``check`` / ``assign`` /
        ``assign&free`` / ``free``).  Aggregate query metrics are always
        kept; the per-call spans are only worth their volume when a
        Chrome trace is being written.
    """

    def __init__(self, max_records: int = 200_000,
                 trace_queries: bool = False):
        self.metrics = MetricsRegistry()
        self.spans: List[SpanRecord] = []
        self.events: List[EventRecord] = []
        self.max_records = max_records
        self.trace_queries = trace_queries
        self.dropped = 0
        self.epoch = perf_counter()
        #: Free-form metadata included in every export (machine, kernel,
        #: representation, ...).
        self.meta: Dict[str, object] = {}

    # -- recording -----------------------------------------------------
    def span(self, name: str, category: str = CAT_PROFILE, **args):
        """Context manager timing a block and recording it as a span."""
        return _SpanContext(self, name, category, args or None)

    def record_span(self, name, category, start, duration, args=None):
        self.metrics.observe("%s.%s" % (category, name), duration)
        if len(self.spans) + len(self.events) < self.max_records:
            self.spans.append(
                SpanRecord(name, category, start, duration, args)
            )
        else:
            self.dropped += 1

    def event(self, name: str, category: str = CAT_PROFILE, **args):
        """Record an instant event."""
        self.metrics.add("%s.%s" % (category, name))
        if len(self.spans) + len(self.events) < self.max_records:
            self.events.append(
                EventRecord(name, category, perf_counter(), args or None)
            )
        else:
            self.dropped += 1

    def count(self, name: str, value: float = 1) -> None:
        """Bump a named counter (no record, metrics only)."""
        self.metrics.add(name, value)

    def record_query(self, function: str, start: float, duration: float,
                     units: int, op: Optional[str] = None,
                     cycle: Optional[int] = None) -> None:
        """Account one query-module call (hot path when tracing).

        Wall time and call counts land next to the work units charged by
        :class:`~repro.query.work.WorkCounters`, so exporters can derive
        units-per-second and per-function latency distributions.
        """
        name = "query." + function
        self.metrics.observe(name, duration)
        self.metrics.histogram(name).observe(duration)
        self.metrics.add(name + ".units", units)
        if self.trace_queries:
            if len(self.spans) + len(self.events) < self.max_records:
                args = None
                if op is not None:
                    args = {"op": op, "cycle": cycle, "units": units}
                self.spans.append(
                    SpanRecord(function, CAT_QUERY, start, duration, args)
                )
            else:
                self.dropped += 1

    # -- introspection -------------------------------------------------
    @property
    def num_records(self) -> int:
        return len(self.spans) + len(self.events)

    def __repr__(self) -> str:
        return "Tracer(%d spans, %d events, %d dropped)" % (
            len(self.spans), len(self.events), self.dropped,
        )


# ----------------------------------------------------------------------
# The process-global active tracer.
# ----------------------------------------------------------------------
_current: Optional[Tracer] = None


def current() -> Optional[Tracer]:
    """The active tracer, or ``None`` when tracing is disabled."""
    return _current


def enabled() -> bool:
    return _current is not None


def start(tracer: Optional[Tracer] = None, **kwargs) -> Tracer:
    """Activate ``tracer`` (or a fresh one built with ``kwargs``)."""
    global _current
    if tracer is None:
        tracer = Tracer(**kwargs)
    _current = tracer
    return tracer


def stop() -> Optional[Tracer]:
    """Deactivate tracing and return the tracer that was active."""
    global _current
    tracer, _current = _current, None
    return tracer


@contextmanager
def tracing(tracer: Optional[Tracer] = None, **kwargs):
    """``with tracing() as tracer:`` — activate for the block's duration.

    Nesting restores the previously active tracer on exit.
    """
    global _current
    previous = _current
    active = tracer if tracer is not None else Tracer(**kwargs)
    _current = active
    try:
        yield active
    finally:
        _current = previous


# -- module-level emission helpers (no-ops when disabled) --------------
def span(name: str, category: str = CAT_PROFILE, **args):
    """Span context manager on the active tracer; no-op when disabled."""
    tracer = _current
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, category, **args)


def event(name: str, category: str = CAT_PROFILE, **args) -> None:
    tracer = _current
    if tracer is not None:
        tracer.event(name, category, **args)


def count(name: str, value: float = 1) -> None:
    tracer = _current
    if tracer is not None:
        tracer.count(name, value)


__all__ = [
    "CAT_AUTOMATA",
    "CAT_PROFILE",
    "CAT_QUERY",
    "CAT_REDUCE",
    "CAT_RESILIENCE",
    "CAT_SCHED",
    "EventRecord",
    "SpanRecord",
    "Tracer",
    "count",
    "current",
    "enabled",
    "event",
    "span",
    "start",
    "stop",
    "tracing",
]
