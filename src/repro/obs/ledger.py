"""The scheduling decision ledger: a bounded ring of placement records.

Where the :mod:`repro.obs.trace` plane answers *where did the time go*,
the ledger answers *why does the schedule look like this*: every
placement, forced placement, eviction, and budget transition of a
scheduler run appends one structured record — operation, candidate
window, chosen cycle, blocking blame, budget state — to a bounded
``collections.deque``.  The ring is cheap enough to leave on for whole
runs (one dict append per scheduler decision, no wall-clock reads, no
formatting); full per-call spans stay behind the existing
:class:`~repro.obs.trace.Tracer`.

The activation pattern mirrors the tracer exactly:

* schedulers capture the ledger once per run (``ledger =
  obs_ledger.current()``) and guard each emission with a plain
  ``is not None`` test, so the disabled path costs one module-global
  read per scheduler call;
* :func:`recording` activates a ledger for a block, restoring the
  previous one on exit (nesting-safe);
* like tracing, ledger state is process-global and not thread-safe by
  design (the schedulers are single-threaded).

``repro.obs`` stays a leaf package: blame and window payloads arrive as
plain dicts (see :meth:`repro.query.base.Blame.to_dict`), never as query
or scheduler objects.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

#: Record kinds emitted by the built-in schedulers.
PLACE = "place"
FORCE = "force"
EVICT = "evict"
UNSCHEDULE = "unschedule"
ATTEMPT = "attempt"
BUDGET = "budget"
GIVE_UP = "give_up"


class LedgerRecord:
    """One scheduler decision: a kind plus a flat payload dict."""

    __slots__ = ("seq", "kind", "data")

    def __init__(self, seq: int, kind: str, data: Dict[str, object]):
        self.seq = seq
        self.kind = kind
        self.data = data

    def to_dict(self) -> Dict[str, object]:
        doc: Dict[str, object] = {"seq": self.seq, "kind": self.kind}
        doc.update(self.data)
        return doc

    def __repr__(self) -> str:
        return "LedgerRecord(%d, %r, %r)" % (self.seq, self.kind, self.data)


class DecisionLedger:
    """Bounded ring buffer of scheduler decision records.

    Parameters
    ----------
    capacity:
        Maximum records retained; older records are dropped silently by
        the deque (the drop count stays observable as ``emitted -
        len(ledger)``).  The default comfortably holds every decision of
        the study-machine workloads while bounding memory for adversarial
        loops.
    """

    def __init__(self, capacity: int = 65536):
        if capacity < 1:
            raise ValueError("ledger capacity must be >= 1")
        self.capacity = capacity
        self.records: "deque[LedgerRecord]" = deque(maxlen=capacity)
        #: Total records emitted, including any the ring has dropped.
        self.emitted = 0
        #: Free-form run metadata (machine, representation, ...).
        self.meta: Dict[str, object] = {}

    # -- recording (the hot path) --------------------------------------
    def record(self, kind: str, data: Dict[str, object]) -> None:
        """Append one decision record (``data`` is stored, not copied)."""
        self.records.append(LedgerRecord(self.emitted, kind, data))
        self.emitted += 1

    # -- introspection -------------------------------------------------
    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[LedgerRecord]:
        return iter(self.records)

    @property
    def dropped(self) -> int:
        """Records the ring has discarded to stay within capacity."""
        return self.emitted - len(self.records)

    def tail(self, count: int = 20) -> List[Dict[str, object]]:
        """The last ``count`` records as plain dicts (newest last)."""
        if count <= 0:
            return []
        window = list(self.records)[-count:]
        return [record.to_dict() for record in window]

    def clear(self) -> None:
        self.records.clear()
        self.emitted = 0

    def __repr__(self) -> str:
        return "DecisionLedger(%d/%d records, %d dropped)" % (
            len(self.records), self.capacity, self.dropped,
        )


# ----------------------------------------------------------------------
# The process-global active ledger (same switch pattern as the tracer).
# ----------------------------------------------------------------------
_current: Optional[DecisionLedger] = None


def current() -> Optional[DecisionLedger]:
    """The active ledger, or ``None`` when decision logging is off."""
    return _current


def enabled() -> bool:
    return _current is not None


def start(ledger: Optional[DecisionLedger] = None, **kwargs) -> DecisionLedger:
    """Activate ``ledger`` (or a fresh one built with ``kwargs``)."""
    global _current
    if ledger is None:
        ledger = DecisionLedger(**kwargs)
    _current = ledger
    return ledger


def stop() -> Optional[DecisionLedger]:
    """Deactivate decision logging and return the active ledger."""
    global _current
    ledger, _current = _current, None
    return ledger


@contextmanager
def recording(ledger: Optional[DecisionLedger] = None, **kwargs):
    """``with recording() as ledger:`` — activate for the block.

    Nesting restores the previously active ledger on exit.
    """
    global _current
    previous = _current
    active = ledger if ledger is not None else DecisionLedger(**kwargs)
    _current = active
    try:
        yield active
    finally:
        _current = previous


def active_tail(count: int = 20) -> Optional[List[Dict[str, object]]]:
    """Tail of the active ledger, or ``None`` when logging is off.

    The shape error paths attach to :class:`~repro.errors.ScheduleError`
    — callers never need to guard for an inactive ledger themselves.
    """
    ledger = _current
    if ledger is None:
        return None
    return ledger.tail(count)


__all__ = [
    "ATTEMPT",
    "BUDGET",
    "DecisionLedger",
    "EVICT",
    "FORCE",
    "GIVE_UP",
    "LedgerRecord",
    "PLACE",
    "UNSCHEDULE",
    "active_tail",
    "current",
    "enabled",
    "recording",
    "start",
    "stop",
]
