"""Blame rollups over decision-ledger records.

Pure functions that fold :class:`~repro.obs.ledger.DecisionLedger`
records (or their dict exports) into the aggregates ``repro explain``
renders: per-resource pressure histograms, per-II attempt summaries, and
one-line failure descriptions such as ``II=7 failed: fp_bus saturated at
cycles 3-5, 14 evictions``.

Everything here consumes plain dicts — the ledger payload currency — so
the module stays a leaf next to :mod:`repro.obs.ledger`: no imports from
the query or scheduler layers.  The scheduler-running report builder
lives in :mod:`repro.analysis.explain`.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs.ledger import (
    ATTEMPT,
    DecisionLedger,
    EVICT,
    FORCE,
    LedgerRecord,
)


def iter_records(source) -> Iterable[Dict[str, object]]:
    """Normalize a ledger / record iterable into payload dicts."""
    if isinstance(source, DecisionLedger):
        source = source.records
    for record in source:
        if isinstance(record, LedgerRecord):
            yield record.to_dict()
        else:
            yield record


def _blames_of(record: Dict[str, object]) -> Iterable[Dict[str, object]]:
    blame = record.get("blame")
    if isinstance(blame, dict):
        yield blame
    window_blame = record.get("window_blame")
    if isinstance(window_blame, (list, tuple)):
        for entry in window_blame:
            if isinstance(entry, dict):
                yield entry


def pressure_histogram(source) -> Dict[str, Dict[int, int]]:
    """Per-resource histogram of blamed cycles.

    ``result[resource][cycle]`` counts how often that (resource, cycle)
    cell was named as the canonical blocking cell — MRT slots under
    modulo scheduling, absolute cycles otherwise.
    """
    histogram: Dict[str, Counter] = {}
    for record in iter_records(source):
        for blame in _blames_of(record):
            resource = blame.get("resource")
            cycle = blame.get("cycle")
            if resource is None or cycle is None:
                continue
            histogram.setdefault(str(resource), Counter())[int(cycle)] += 1
    return {
        resource: dict(counter) for resource, counter in histogram.items()
    }


def blame_counts(source) -> Dict[str, int]:
    """Total blame count per resource, most-blamed first in dict order."""
    counts = Counter()
    for record in iter_records(source):
        for blame in _blames_of(record):
            resource = blame.get("resource")
            if resource is not None:
                counts[str(resource)] += 1
    ordered = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
    return dict(ordered)


def cycle_ranges(cycles: Iterable[int]) -> List[Tuple[int, int]]:
    """Collapse a cycle set into sorted inclusive (start, end) runs."""
    ordered = sorted(set(cycles))
    runs: List[Tuple[int, int]] = []
    for cycle in ordered:
        if runs and cycle == runs[-1][1] + 1:
            runs[-1] = (runs[-1][0], cycle)
        else:
            runs.append((cycle, cycle))
    return runs


def format_cycle_ranges(cycles: Iterable[int], limit: int = 3) -> str:
    """Human rendering of blamed cycles: ``cycles 3-5, 9`` (capped)."""
    runs = cycle_ranges(cycles)
    if not runs:
        return "no cycles"
    parts = []
    for start, end in runs[:limit]:
        parts.append(str(start) if start == end else "%d-%d" % (start, end))
    text = ("cycle " if len(runs) == 1 and runs[0][0] == runs[0][1]
            else "cycles ")
    text += ", ".join(parts)
    if len(runs) > limit:
        text += ", ..."
    return text


def attempt_summaries(source) -> List[Dict[str, object]]:
    """One summary per scheduler II attempt, in attempt order.

    Folds the ``attempt`` start/end markers with every blame and
    eviction recorded at that II:

    * ``ii``, ``succeeded``, ``budget_exceeded``, ``decisions``,
      ``evictions`` — the attempt's outcome and cost;
    * ``blame`` — per-resource blame totals within the attempt;
    * ``saturation`` — per-resource blamed-cycle histograms;
    * ``top_resource`` — the most-blamed resource, or ``None``.
    """
    summaries: List[Dict[str, object]] = []
    by_ii: Dict[int, Dict[str, object]] = {}

    def entry(ii: int) -> Dict[str, object]:
        summary = by_ii.get(ii)
        if summary is None:
            summary = {
                "ii": ii,
                "succeeded": None,
                "budget_exceeded": False,
                "decisions": 0,
                "evictions": 0,
                "forced": 0,
                "blame": Counter(),
                "saturation": {},
            }
            by_ii[ii] = summary
            summaries.append(summary)
        return summary

    for record in iter_records(source):
        ii = record.get("ii")
        if ii is None:
            continue
        summary = entry(int(ii))
        kind = record.get("kind")
        if kind == ATTEMPT and record.get("phase") == "end":
            summary["succeeded"] = bool(record.get("succeeded"))
            summary["budget_exceeded"] = bool(record.get("budget_exceeded"))
            summary["decisions"] = int(record.get("decisions", 0))
            summary["evictions"] = int(
                record.get("evictions_resource", 0)
            ) + int(record.get("evictions_dependence", 0))
        elif kind == EVICT:
            pass  # counted via the attempt-end totals
        elif kind == FORCE:
            summary["forced"] += 1
        for blame in _blames_of(record):
            resource = blame.get("resource")
            cycle = blame.get("cycle")
            if resource is None:
                continue
            summary["blame"][str(resource)] += 1
            if cycle is not None:
                cycles = summary["saturation"].setdefault(
                    str(resource), Counter()
                )
                cycles[int(cycle)] += 1

    for summary in summaries:
        blame: Counter = summary["blame"]
        summary["blame"] = dict(
            sorted(blame.items(), key=lambda item: (-item[1], item[0]))
        )
        summary["saturation"] = {
            resource: dict(counter)
            for resource, counter in summary["saturation"].items()
        }
        summary["top_resource"] = next(iter(summary["blame"]), None)
    return summaries


def describe_attempt(summary: Dict[str, object]) -> str:
    """One-line failure/success description of an II attempt."""
    ii = summary.get("ii")
    succeeded = summary.get("succeeded")
    if succeeded:
        return "II=%s succeeded: %d decisions, %d evictions" % (
            ii, summary.get("decisions", 0), summary.get("evictions", 0),
        )
    parts: List[str] = []
    top = summary.get("top_resource")
    if top is not None:
        cycles = summary.get("saturation", {}).get(top, {})
        parts.append(
            "%s saturated at %s" % (top, format_cycle_ranges(cycles))
        )
    evictions = summary.get("evictions", 0)
    if evictions:
        parts.append("%d evictions" % evictions)
    if summary.get("budget_exceeded"):
        parts.append("budget exhausted")
    if not parts:
        parts.append("no blame recorded")
    return "II=%s failed: %s" % (ii, ", ".join(parts))


def eviction_counts(source) -> Dict[str, int]:
    """Evictions per victim operation name (most-evicted first)."""
    counts = Counter()
    for record in iter_records(source):
        if record.get("kind") == EVICT:
            victim = record.get("op")
            if victim is not None:
                counts[str(victim)] += 1
    ordered = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
    return dict(ordered)


def summarize(source) -> Dict[str, object]:
    """The full rollup bundle ``repro explain`` embeds per run."""
    records = list(iter_records(source))
    attempts = attempt_summaries(records)
    return {
        "records": len(records),
        "pressure": pressure_histogram(records),
        "blame": blame_counts(records),
        "evictions": eviction_counts(records),
        "attempts": attempts,
        "narrative": [describe_attempt(summary) for summary in attempts],
    }


__all__ = [
    "attempt_summaries",
    "blame_counts",
    "cycle_ranges",
    "describe_attempt",
    "eviction_counts",
    "format_cycle_ranges",
    "iter_records",
    "pressure_histogram",
    "summarize",
]
