"""Aggregated metrics: counters, timers, and latency histograms.

The registry is the *accumulating* half of the observability layer: while
span and event records (see :mod:`repro.obs.trace`) are bounded lists kept
for the Chrome trace export, every observation also lands here in O(1)
space, so metrics survive arbitrarily long runs — including the paper's
"millions of calls" query workloads — without growing memory.

Latency histograms use power-of-two microsecond buckets (1us, 2us, 4us,
... up to ~67s) which is plenty of resolution for query calls that take
tens of nanoseconds to milliseconds, and makes quantile estimates cheap.
"""

from __future__ import annotations

from typing import Dict, List, Optional

#: Upper bounds of the histogram buckets, in microseconds (powers of two).
HISTOGRAM_BUCKETS = tuple(float(1 << i) for i in range(27))  # 1us .. ~67s


class TimerStats:
    """Count / total / min / max of a set of duration observations."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = 0.0
        self.max = 0.0

    def observe(self, duration: float) -> None:
        if not self.count or duration < self.min:
            self.min = duration
        if duration > self.max:
            self.max = duration
        self.count += 1
        self.total += duration

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "TimerStats") -> None:
        if not other.count:
            return
        if not self.count or other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        self.count += other.count
        self.total += other.total

    def to_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total_s": self.total,
            "min_s": self.min,
            "max_s": self.max,
            "mean_s": self.mean,
        }


class Histogram:
    """Fixed power-of-two-bucket latency histogram (microseconds)."""

    __slots__ = ("counts", "count", "overflow")

    def __init__(self) -> None:
        self.counts = [0] * len(HISTOGRAM_BUCKETS)
        self.count = 0
        self.overflow = 0

    def observe(self, duration_s: float) -> None:
        us = duration_s * 1e6
        self.count += 1
        # Linear scan is fine: almost every observation lands in the first
        # few buckets, and bisect on 27 floats is not faster in practice.
        for index, bound in enumerate(HISTOGRAM_BUCKETS):
            if us <= bound:
                self.counts[index] += 1
                return
        self.overflow += 1

    def quantile(self, q: float) -> float:
        """Approximate quantile in microseconds (upper bucket bound)."""
        if not self.count:
            return 0.0
        rank = q * self.count
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= rank:
                return HISTOGRAM_BUCKETS[index]
        return HISTOGRAM_BUCKETS[-1]

    def merge(self, other: "Histogram") -> None:
        for index, bucket_count in enumerate(other.counts):
            self.counts[index] += bucket_count
        self.count += other.count
        self.overflow += other.overflow

    def to_dict(self) -> Dict[str, object]:
        buckets = [
            {"le_us": bound, "count": bucket_count}
            for bound, bucket_count in zip(HISTOGRAM_BUCKETS, self.counts)
            if bucket_count
        ]
        return {
            "unit": "us",
            "count": self.count,
            "overflow": self.overflow,
            "p50_us": self.quantile(0.50),
            "p90_us": self.quantile(0.90),
            "p99_us": self.quantile(0.99),
            "buckets": buckets,
        }


class MetricsRegistry:
    """Named counters, timers, and histograms for one tracing session."""

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.timers: Dict[str, TimerStats] = {}
        self.histograms: Dict[str, Histogram] = {}

    # -- counters ------------------------------------------------------
    def add(self, name: str, value: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    # -- timers --------------------------------------------------------
    def timer(self, name: str) -> TimerStats:
        timer = self.timers.get(name)
        if timer is None:
            timer = self.timers[name] = TimerStats()
        return timer

    def observe(self, name: str, duration: float) -> None:
        self.timer(name).observe(duration)

    # -- histograms ----------------------------------------------------
    def histogram(self, name: str) -> Histogram:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        return hist

    # -- aggregation ---------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> None:
        for name, value in other.counters.items():
            self.add(name, value)
        for name, timer in other.timers.items():
            self.timer(name).merge(timer)
        for name, hist in other.histograms.items():
            self.histogram(name).merge(hist)

    def timer_names(self, prefix: str = "") -> List[str]:
        return sorted(n for n in self.timers if n.startswith(prefix))

    def get_counter(self, name: str, default: float = 0) -> float:
        return self.counters.get(name, default)

    def to_dict(self) -> Dict[str, object]:
        return {
            "counters": dict(sorted(self.counters.items())),
            "timers": {
                name: timer.to_dict()
                for name, timer in sorted(self.timers.items())
            },
            "histograms": {
                name: hist.to_dict()
                for name, hist in sorted(self.histograms.items())
            },
        }


def units_per_second(units: float, wall_s: float) -> Optional[float]:
    """Work-unit throughput, or ``None`` when wall time is unmeasurable."""
    if wall_s <= 0.0:
        return None
    return units / wall_s


__all__ = [
    "HISTOGRAM_BUCKETS",
    "Histogram",
    "MetricsRegistry",
    "TimerStats",
    "units_per_second",
]
