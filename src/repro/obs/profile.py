"""The ``repro profile`` pipeline: reduce + schedule under tracing.

Runs the paper's full workflow — forbidden-matrix construction,
Algorithm 1, selection, then Iterative Modulo Scheduling of one kernel or
a generated loop suite — with a tracer active, and returns the tracer so
callers can render any of the exports.  This module is deliberately *not*
imported from ``repro.obs.__init__``: it pulls in the scheduler stack,
and the obs core must stay a leaf package the query layer can import.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.reduce import reduce_machine
from repro.errors import MachineDescriptionError
from repro.obs.trace import CAT_PROFILE, Tracer, tracing
from repro.scheduler.ddg import chain
from repro.scheduler.modulo import IterativeModuloScheduler
from repro.workloads import KERNELS, loop_suite


def workload_for(machine, kernel: Optional[str], loops: int) -> List:
    """Dependence graphs to profile ``machine`` with.

    The named kernel when given; otherwise the generated loop suite,
    keeping only loops whose opcodes the machine implements.  Machines
    outside the Cydra-5-subset repertoire (``example``, MDL files, ...)
    get machine-native chain loops over their own operations instead, so
    ``repro profile`` works for any description.
    """
    if kernel is not None:
        return [KERNELS[kernel]()]

    def implements(opcode: str) -> bool:
        # Resolve through alternative groups: the suite says ``load_s``,
        # the Cydra 5 implements it as ``load_s.0`` / ``load_s.1``.
        try:
            machine.alternatives_of(opcode)
        except MachineDescriptionError:
            return False
        return True

    suite = [
        graph
        for graph in loop_suite(loops)
        if all(implements(op) for op in graph.opcodes())
    ]
    if suite:
        return suite
    names = machine.operation_names
    width = min(8, len(names))
    return [
        chain(
            "native-%d" % index,
            [names[(index + j) % len(names)] for j in range(width)],
        )
        for index in range(max(1, loops))
    ]


def profile_machine(
    machine,
    kernel: Optional[str] = None,
    loops: int = 8,
    representation: str = "discrete",
    word_cycles: int = 1,
    objective: str = "res-uses",
    schedule_reduced: bool = False,
    tracer: Optional[Tracer] = None,
    trace_queries: bool = False,
    max_records: int = 200_000,
    reduction_cache: Optional[str] = None,
) -> Tracer:
    """Profile the reduction + scheduling pipeline on ``machine``.

    Parameters
    ----------
    machine:
        Machine description to profile.
    kernel / loops:
        Schedule the named kernel, or (when ``kernel`` is ``None``) the
        first ``loops`` loops of the generated suite.
    representation / word_cycles:
        Query-module representation driven by the scheduler.
    objective:
        Reduction objective (``res-uses`` / ``word-uses``).
    schedule_reduced:
        Schedule on the reduced description instead of the original —
        the paper's headline configuration.
    tracer / trace_queries / max_records:
        Tracing knobs; a fresh tracer is built when none is given.
    reduction_cache:
        Optional digest-keyed reduction-cache directory (see
        :mod:`repro.resilience.reduction_cache`).  Cache hits skip the
        reduce phase's work, so the benchmark observatory never passes
        this — its work counters must not depend on cache warmth.
    """
    if tracer is None:
        tracer = Tracer(max_records=max_records, trace_queries=trace_queries)
    tracer.meta.update(
        machine=machine.name,
        kernel=kernel or ("suite[%d]" % loops),
        representation=representation,
        word_cycles=word_cycles,
        objective=objective,
        scheduled_on="reduced" if schedule_reduced else "original",
    )
    with tracing(tracer):
        with tracer.span("reduce", CAT_PROFILE):
            if reduction_cache is not None:
                from repro.resilience.reduction_cache import cached_reduce

                cached = cached_reduce(
                    machine,
                    objective=objective,
                    word_cycles=word_cycles,
                    cache_dir=reduction_cache,
                )
                reduced = cached.reduced
            else:
                reduced = reduce_machine(
                    machine, objective=objective, word_cycles=word_cycles
                ).reduced
        target = reduced if schedule_reduced else machine
        scheduler = IterativeModuloScheduler(
            target,
            representation=representation,
            word_cycles=word_cycles,
        )
        graphs = workload_for(machine, kernel, loops)
        with tracer.span("schedule", CAT_PROFILE, loops=len(graphs)):
            results: List[object] = []
            for graph in graphs:
                results.append(scheduler.schedule(graph))
    optimal = sum(1 for r in results if r.optimal)
    tracer.count("profile.loops", len(graphs))
    tracer.count("profile.loops_at_mii", optimal)
    # Schedule-quality counters: the achieved-II total against the MII
    # lower-bound total is the benchmark observatory's quality metric
    # (a reduction or scheduler change that speeds queries up but costs
    # II shows up here, not in the work units).
    tracer.count("profile.ii_total", sum(r.ii for r in results))
    tracer.count("profile.mii_total", sum(r.mii for r in results))
    return tracer


__all__ = ["profile_machine", "workload_for"]
