"""Crash-safe file writes: temp file in the target directory + ``os.replace``.

A process killed mid-write must never leave a truncated artifact behind —
readers either see the complete previous version or the complete new one.
This module is a dependency-free leaf so that every writer in the library
(``mdl`` dumps, ``obs`` exporters, lint baselines, the resilience artifact
store) can route through it without import cycles.
"""

from __future__ import annotations

import os
import tempfile


def atomic_write_text(path: str, text: str, encoding: str = "utf-8") -> None:
    """Write ``text`` to ``path`` atomically.

    The data lands in a temporary file in the same directory (so the final
    ``os.replace`` stays within one filesystem and is atomic), is flushed
    and fsynced, and only then renamed over the target.  On any failure the
    temporary file is removed; the target is either untouched or complete.
    """
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(
        dir=directory,
        prefix="." + os.path.basename(path) + ".",
        suffix=".tmp",
    )
    try:
        with os.fdopen(fd, "w", encoding=encoding) as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def atomic_write_bytes(path: str, data: bytes) -> None:
    """Binary twin of :func:`atomic_write_text`: same temp-file + fsync +
    ``os.replace`` protocol, same all-or-nothing guarantee."""
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(
        dir=directory,
        prefix="." + os.path.basename(path) + ".",
        suffix=".tmp",
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


__all__ = ["atomic_write_bytes", "atomic_write_text"]
