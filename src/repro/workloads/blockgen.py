"""Synthetic basic blocks for scalar (acyclic) scheduling.

The Multiflow compiler (paper Section 1) used backtracking on *scalar*
code; the operation-driven scheduler exercises the same unrestricted
query pattern on basic blocks.  This generator produces acyclic
dependence DAGs shaped like compiled expression code: several independent
value chains that occasionally share sub-expressions, feeding a few
stores, with a branch terminating the block.

Opcode names default to the Cydra 5 subset's repertoire so blocks run on
the same machines as the loop suite; pass a different ``mix`` for other
machines.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.scheduler.ddg import DependenceGraph
from repro.workloads.loopgen import RESULT_LATENCY

#: Default opcode mix for generated blocks (opcode, relative weight).
DEFAULT_MIX: Sequence[Tuple[str, int]] = (
    ("iadd", 30),
    ("fadd_s", 20),
    ("fmul_s", 15),
    ("load_s", 20),
    ("mov", 10),
    ("icmp", 5),
)

MIN_BLOCK_OPS = 1
MAX_BLOCK_OPS = 96


def _weighted(rng: random.Random, mix: Sequence[Tuple[str, int]]) -> str:
    total = sum(weight for _op, weight in mix)
    pick = rng.uniform(0, total)
    for op, weight in mix:
        pick -= weight
        if pick <= 0:
            return op
    return mix[-1][0]


def generate_block(
    seed: int,
    mix: Sequence[Tuple[str, int]] = DEFAULT_MIX,
    latencies: Optional[Dict[str, int]] = None,
    name: Optional[str] = None,
    store_opcode: str = "store_s",
) -> DependenceGraph:
    """Generate one acyclic basic block.

    Block sizes follow a log-normal draw (mean ~12 ops); each operation
    consumes 0-2 earlier values, biased toward recent ones so the DAG has
    both long chains (critical paths) and wide independent sections
    (parallelism for the scheduler to pack).
    """
    rng = random.Random(0xB10C ^ seed)
    latencies = latencies or RESULT_LATENCY
    size = int(round(math.exp(rng.gauss(2.3, 0.7))))
    size = max(MIN_BLOCK_OPS, min(MAX_BLOCK_OPS, size))

    graph = DependenceGraph(name or ("block%04d" % seed))
    values: List[str] = []
    for index in range(size):
        opcode = _weighted(rng, mix)
        node = "%s_%d" % (opcode, index)
        graph.add_operation(node, opcode)
        for _input in range(rng.randint(0, min(2, len(values)))):
            # Bias toward recent producers: realistic expression shape.
            pick = len(values) - 1 - int(
                rng.expovariate(0.5) % len(values)
            )
            producer = values[max(0, pick)]
            latency = latencies[graph.operation(producer).opcode]
            graph.add_dependence(producer, node, latency)
        values.append(node)

    # Terminate with stores of the latest values and a branch.
    num_stores = max(1, size // 8)
    anchors = values[-num_stores:]
    for index, producer in enumerate(anchors):
        store = "%s_t%d" % (store_opcode, index)
        graph.add_operation(store, store_opcode)
        graph.add_dependence(
            producer, store, latencies[graph.operation(producer).opcode]
        )
    return graph


def block_suite(
    count: int = 200,
    seed: int = 0,
    mix: Sequence[Tuple[str, int]] = DEFAULT_MIX,
    **kwargs,
) -> List[DependenceGraph]:
    """A reproducible suite of ``count`` basic blocks.

    Extra keyword arguments (``latencies``, ``store_opcode``) are
    forwarded to :func:`generate_block`.
    """
    return [
        generate_block(seed * 91019 + index, mix=mix, **kwargs)
        for index in range(count)
    ]
