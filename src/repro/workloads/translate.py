"""Porting dependence graphs between machines.

The loop suite is generated over the Cydra 5 subset's opcode vocabulary;
to evaluate another machine on the *same* loop shapes, translate each
graph: map opcodes through a table and recompute edge latencies from the
target machine's latency metadata (producers keep their dataflow, only
their costs change).  This is how the benchmark harness runs the 1327
loops on the PlayDoh.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.machine import MachineDescription
from repro.errors import MachineDescriptionError, ScheduleError
from repro.scheduler.ddg import DependenceGraph

#: Cydra-5-subset opcodes -> PlayDoh opcodes.
CYDRA_TO_PLAYDOH: Dict[str, str] = {
    "load_s": "ld",
    "store_s": "st",
    "addr_gen": "ialu",
    "iadd": "ialu",
    "icmp": "icmpp",
    "fadd_s": "fma",
    "fmul_s": "fma",
    "mov": "xmove",
    "brtop": "br",
}

#: Cydra-5-subset opcodes -> Alpha 21064 opcodes.
CYDRA_TO_ALPHA: Dict[str, str] = {
    "load_s": "load",
    "store_s": "store",
    "addr_gen": "int_alu",
    "iadd": "int_alu",
    "icmp": "int_alu",
    "fadd_s": "fadd",
    "fmul_s": "fmul",
    "mov": "int_alu",
    "brtop": "branch",
}

#: Cydra-5-subset opcodes -> MIPS R3000 opcodes.
CYDRA_TO_MIPS: Dict[str, str] = {
    "load_s": "load",
    "store_s": "store",
    "addr_gen": "int_alu",
    "iadd": "int_alu",
    "icmp": "int_alu",
    "fadd_s": "fadd",
    "fmul_s": "fmul_s",
    "mov": "int_alu",
    "brtop": "branch",
}

#: Opcode maps by target machine *name* — how the suite ports to every
#: non-Cydra study machine.
PORTS: Dict[str, Dict[str, str]] = {
    "playdoh": CYDRA_TO_PLAYDOH,
    "alpha-21064": CYDRA_TO_ALPHA,
    "mips-r3000": CYDRA_TO_MIPS,
}


def translate_graph(
    graph: DependenceGraph,
    opcode_map: Dict[str, str],
    machine: MachineDescription,
    default_latency: int = 1,
    name: Optional[str] = None,
) -> DependenceGraph:
    """Port ``graph`` onto ``machine``'s opcode vocabulary.

    Every operation's opcode is mapped through ``opcode_map`` (missing
    opcodes are an error — translation must be total to be meaningful);
    every edge's latency is recomputed from the *translated producer's*
    latency on the target machine, except zero-latency edges, which stay
    zero (they encode ordering, not dataflow cost).
    """
    translated = DependenceGraph(name or (graph.name + "-ported"))
    for op in graph.operations():
        if op.opcode not in opcode_map:
            raise ScheduleError(
                "no translation for opcode %r" % op.opcode
            )
        translated.add_operation(op.name, opcode_map[op.opcode])
    for edge in graph.edges():
        if edge.latency <= 0:
            latency = edge.latency
        else:
            producer = translated.operation(edge.src).opcode
            latency = machine.latency_of(producer, default=default_latency)
        translated.add_dependence(
            edge.src,
            edge.dst,
            latency,
            distance=edge.distance,
            kind=edge.kind,
        )
    return translated


def _resolves(machine: MachineDescription, opcode: str) -> bool:
    """True when ``machine`` knows ``opcode`` (directly or as a group)."""
    try:
        machine.alternatives_of(opcode)
    except MachineDescriptionError:
        return False
    return True


def port_graph(
    graph: DependenceGraph, machine: MachineDescription
) -> DependenceGraph:
    """Port ``graph`` to ``machine`` when its vocabulary requires it.

    Graphs whose opcodes the machine already resolves pass through
    unchanged; otherwise the registered :data:`PORTS` map for the
    machine's name applies (a missing map raises
    :class:`~repro.errors.ScheduleError`, like any unknown opcode).
    """
    if all(_resolves(machine, op.opcode) for op in graph.operations()):
        return graph
    opcode_map = PORTS.get(machine.name)
    if opcode_map is None:
        raise ScheduleError(
            "graph %r uses opcodes unknown to machine %r and no opcode"
            " map is registered for it" % (graph.name, machine.name)
        )
    return translate_graph(graph, opcode_map, machine, name=graph.name)
