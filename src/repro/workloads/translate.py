"""Porting dependence graphs between machines.

The loop suite is generated over the Cydra 5 subset's opcode vocabulary;
to evaluate another machine on the *same* loop shapes, translate each
graph: map opcodes through a table and recompute edge latencies from the
target machine's latency metadata (producers keep their dataflow, only
their costs change).  This is how the benchmark harness runs the 1327
loops on the PlayDoh.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.machine import MachineDescription
from repro.errors import ScheduleError
from repro.scheduler.ddg import DependenceGraph

#: Cydra-5-subset opcodes -> PlayDoh opcodes.
CYDRA_TO_PLAYDOH: Dict[str, str] = {
    "load_s": "ld",
    "store_s": "st",
    "addr_gen": "ialu",
    "iadd": "ialu",
    "icmp": "icmpp",
    "fadd_s": "fma",
    "fmul_s": "fma",
    "mov": "xmove",
    "brtop": "br",
}


def translate_graph(
    graph: DependenceGraph,
    opcode_map: Dict[str, str],
    machine: MachineDescription,
    default_latency: int = 1,
    name: Optional[str] = None,
) -> DependenceGraph:
    """Port ``graph`` onto ``machine``'s opcode vocabulary.

    Every operation's opcode is mapped through ``opcode_map`` (missing
    opcodes are an error — translation must be total to be meaningful);
    every edge's latency is recomputed from the *translated producer's*
    latency on the target machine, except zero-latency edges, which stay
    zero (they encode ordering, not dataflow cost).
    """
    translated = DependenceGraph(name or (graph.name + "-ported"))
    for op in graph.operations():
        if op.opcode not in opcode_map:
            raise ScheduleError(
                "no translation for opcode %r" % op.opcode
            )
        translated.add_operation(op.name, opcode_map[op.opcode])
    for edge in graph.edges():
        if edge.latency <= 0:
            latency = edge.latency
        else:
            producer = translated.operation(edge.src).opcode
            latency = machine.latency_of(producer, default=default_latency)
        translated.add_dependence(
            edge.src,
            edge.dst,
            latency,
            distance=edge.distance,
            kind=edge.kind,
        )
    return translated
