"""Hand-written dependence graphs of classic numeric loop kernels.

These mirror the flavour of the Livermore Fortran Kernels and simple
SPEC-89/Perfect Club inner loops the paper's benchmark was drawn from.
Each builder returns a :class:`DependenceGraph` over the Cydra 5 subset's
opcode repertoire (base names; the scheduler resolves memory-port and
address-unit alternatives).

Latencies follow :data:`repro.workloads.loopgen.RESULT_LATENCY`.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.scheduler.ddg import DependenceGraph
from repro.workloads.loopgen import RESULT_LATENCY


def _dep(graph: DependenceGraph, src: str, dst: str, distance: int = 0) -> None:
    latency = RESULT_LATENCY[graph.operation(src).opcode]
    graph.add_dependence(src, dst, latency, distance=distance)


def _loop_control(graph: DependenceGraph, anchor: str) -> None:
    graph.add_operation("brtop", "brtop")
    graph.add_dependence("brtop", "brtop", RESULT_LATENCY["brtop"], distance=1)
    graph.add_dependence(anchor, "brtop", 1)


def hydro_fragment() -> DependenceGraph:
    """LFK 1, hydro fragment: ``x[k] = q + y[k] * (r*z[k+10] + t*z[k+11])``."""
    g = DependenceGraph("lfk1-hydro")
    for name, opcode in [
        ("a_y", "addr_gen"), ("a_z0", "addr_gen"), ("a_z1", "addr_gen"),
        ("a_x", "addr_gen"),
        ("ld_y", "load_s"), ("ld_z0", "load_s"), ("ld_z1", "load_s"),
        ("m_rz", "fmul_s"), ("m_tz", "fmul_s"), ("add_in", "fadd_s"),
        ("m_y", "fmul_s"), ("add_q", "fadd_s"), ("st_x", "store_s"),
    ]:
        g.add_operation(name, opcode)
    _dep(g, "a_y", "ld_y")
    _dep(g, "a_z0", "ld_z0")
    _dep(g, "a_z1", "ld_z1")
    _dep(g, "ld_z0", "m_rz")
    _dep(g, "ld_z1", "m_tz")
    _dep(g, "m_rz", "add_in")
    _dep(g, "m_tz", "add_in")
    _dep(g, "ld_y", "m_y")
    _dep(g, "add_in", "m_y")
    _dep(g, "m_y", "add_q")
    _dep(g, "add_q", "st_x")
    _dep(g, "a_x", "st_x")
    _loop_control(g, "st_x")
    return g


def inner_product() -> DependenceGraph:
    """LFK 3, inner product: ``q += z[k] * x[k]`` — an accumulator
    recurrence that bounds II by the FP add latency."""
    g = DependenceGraph("lfk3-inner-product")
    for name, opcode in [
        ("a_z", "addr_gen"), ("a_x", "addr_gen"),
        ("ld_z", "load_s"), ("ld_x", "load_s"),
        ("mul", "fmul_s"), ("acc", "fadd_s"),
    ]:
        g.add_operation(name, opcode)
    _dep(g, "a_z", "ld_z")
    _dep(g, "a_x", "ld_x")
    _dep(g, "ld_z", "mul")
    _dep(g, "ld_x", "mul")
    _dep(g, "mul", "acc")
    g.add_dependence("acc", "acc", RESULT_LATENCY["fadd_s"], distance=1)
    _loop_control(g, "acc")
    return g


def first_difference() -> DependenceGraph:
    """LFK 12, first difference: ``x[k] = y[k+1] - y[k]``."""
    g = DependenceGraph("lfk12-first-diff")
    for name, opcode in [
        ("a_y0", "addr_gen"), ("a_y1", "addr_gen"), ("a_x", "addr_gen"),
        ("ld_y0", "load_s"), ("ld_y1", "load_s"),
        ("sub", "fadd_s"), ("st_x", "store_s"),
    ]:
        g.add_operation(name, opcode)
    _dep(g, "a_y0", "ld_y0")
    _dep(g, "a_y1", "ld_y1")
    _dep(g, "ld_y0", "sub")
    _dep(g, "ld_y1", "sub")
    _dep(g, "sub", "st_x")
    _dep(g, "a_x", "st_x")
    _loop_control(g, "st_x")
    return g


def tridiagonal() -> DependenceGraph:
    """LFK 5, tri-diagonal elimination: ``x[i] = z[i]*(y[i] - x[i-1])`` —
    a first-order linear recurrence through an add and a multiply."""
    g = DependenceGraph("lfk5-tridiag")
    for name, opcode in [
        ("a_y", "addr_gen"), ("a_z", "addr_gen"), ("a_x", "addr_gen"),
        ("ld_y", "load_s"), ("ld_z", "load_s"),
        ("sub", "fadd_s"), ("mul", "fmul_s"), ("st_x", "store_s"),
    ]:
        g.add_operation(name, opcode)
    _dep(g, "a_y", "ld_y")
    _dep(g, "a_z", "ld_z")
    _dep(g, "ld_y", "sub")
    _dep(g, "ld_z", "mul")
    _dep(g, "sub", "mul")
    _dep(g, "mul", "st_x")
    _dep(g, "a_x", "st_x")
    # x[i-1] feeds the subtract of the next iteration.
    g.add_dependence("mul", "sub", RESULT_LATENCY["fmul_s"], distance=1)
    _loop_control(g, "st_x")
    return g


def daxpy() -> DependenceGraph:
    """BLAS daxpy: ``y[i] += a * x[i]`` (SPEC-89 style vector update)."""
    g = DependenceGraph("daxpy")
    for name, opcode in [
        ("a_x", "addr_gen"), ("a_y", "addr_gen"),
        ("ld_x", "load_s"), ("ld_y", "load_s"),
        ("mul", "fmul_s"), ("add", "fadd_s"), ("st_y", "store_s"),
    ]:
        g.add_operation(name, opcode)
    _dep(g, "a_x", "ld_x")
    _dep(g, "a_y", "ld_y")
    _dep(g, "ld_x", "mul")
    _dep(g, "mul", "add")
    _dep(g, "ld_y", "add")
    _dep(g, "add", "st_y")
    _dep(g, "a_y", "st_y")
    _loop_control(g, "st_y")
    return g


def state_fragment() -> DependenceGraph:
    """LFK 7-style equation-of-state fragment: a wide expression tree with
    reused subexpressions and heavy FP traffic."""
    g = DependenceGraph("lfk7-state")
    names = [
        ("a_u", "addr_gen"), ("a_z", "addr_gen"), ("a_y", "addr_gen"),
        ("a_x", "addr_gen"),
        ("ld_u0", "load_s"), ("ld_u1", "load_s"), ("ld_u2", "load_s"),
        ("ld_z", "load_s"), ("ld_y", "load_s"),
        ("m1", "fmul_s"), ("m2", "fmul_s"), ("m3", "fmul_s"),
        ("m4", "fmul_s"),
        ("s1", "fadd_s"), ("s2", "fadd_s"), ("s3", "fadd_s"),
        ("s4", "fadd_s"),
        ("st_x", "store_s"),
    ]
    for name, opcode in names:
        g.add_operation(name, opcode)
    for a, l in [("a_u", "ld_u0"), ("a_u", "ld_u1"), ("a_u", "ld_u2"),
                 ("a_z", "ld_z"), ("a_y", "ld_y")]:
        _dep(g, a, l)
    _dep(g, "ld_u0", "m1")
    _dep(g, "ld_z", "m1")
    _dep(g, "ld_u1", "m2")
    _dep(g, "ld_y", "m2")
    _dep(g, "m1", "s1")
    _dep(g, "m2", "s1")
    _dep(g, "ld_u2", "m3")
    _dep(g, "s1", "m3")
    _dep(g, "m3", "s2")
    _dep(g, "ld_u0", "s2")
    _dep(g, "s2", "m4")
    _dep(g, "ld_z", "m4")
    _dep(g, "m4", "s3")
    _dep(g, "s1", "s3")
    _dep(g, "s3", "s4")
    _dep(g, "ld_u1", "s4")
    _dep(g, "s4", "st_x")
    _dep(g, "a_x", "st_x")
    _loop_control(g, "st_x")
    return g


def matmul_inner() -> DependenceGraph:
    """Matrix-multiply inner loop: ``c += a[i][k] * b[k][j]`` with the
    b-column stride handled by an address increment."""
    g = DependenceGraph("matmul-inner")
    for name, opcode in [
        ("a_a", "addr_gen"), ("a_b", "addr_gen"), ("inc_b", "iadd"),
        ("ld_a", "load_s"), ("ld_b", "load_s"),
        ("mul", "fmul_s"), ("acc", "fadd_s"),
    ]:
        g.add_operation(name, opcode)
    _dep(g, "a_a", "ld_a")
    _dep(g, "a_b", "ld_b")
    # Strided address recurrence: next iteration's b address.
    g.add_dependence("inc_b", "inc_b", RESULT_LATENCY["iadd"], distance=1)
    _dep(g, "inc_b", "ld_b")
    _dep(g, "ld_a", "mul")
    _dep(g, "ld_b", "mul")
    _dep(g, "mul", "acc")
    g.add_dependence("acc", "acc", RESULT_LATENCY["fadd_s"], distance=1)
    _loop_control(g, "acc")
    return g


def partial_sums() -> DependenceGraph:
    """LFK 11, first-order partial sums: ``x[k] = x[k-1] + y[k]`` — the
    tightest useful recurrence (one add per iteration)."""
    g = DependenceGraph("lfk11-partial-sums")
    for name, opcode in [
        ("a_y", "addr_gen"), ("a_x", "addr_gen"),
        ("ld_y", "load_s"), ("sum", "fadd_s"), ("st_x", "store_s"),
    ]:
        g.add_operation(name, opcode)
    _dep(g, "a_y", "ld_y")
    _dep(g, "ld_y", "sum")
    g.add_dependence("sum", "sum", RESULT_LATENCY["fadd_s"], distance=1)
    _dep(g, "sum", "st_x")
    _dep(g, "a_x", "st_x")
    _loop_control(g, "st_x")
    return g


def banded_linear() -> DependenceGraph:
    """LFK 2-flavoured excerpt of ICCG: a reduction over strided pairs
    with heavy load traffic relative to arithmetic."""
    g = DependenceGraph("lfk2-banded")
    for name, opcode in [
        ("a_0", "addr_gen"), ("a_1", "addr_gen"),
        ("ld_0", "load_s"), ("ld_1", "load_s"),
        ("ld_2", "load_s"), ("ld_3", "load_s"),
        ("m_0", "fmul_s"), ("m_1", "fmul_s"),
        ("sum", "fadd_s"), ("acc", "fadd_s"),
    ]:
        g.add_operation(name, opcode)
    for addr, load in [("a_0", "ld_0"), ("a_0", "ld_1"),
                       ("a_1", "ld_2"), ("a_1", "ld_3")]:
        _dep(g, addr, load)
    _dep(g, "ld_0", "m_0")
    _dep(g, "ld_1", "m_0")
    _dep(g, "ld_2", "m_1")
    _dep(g, "ld_3", "m_1")
    _dep(g, "m_0", "sum")
    _dep(g, "m_1", "sum")
    _dep(g, "sum", "acc")
    g.add_dependence("acc", "acc", RESULT_LATENCY["fadd_s"], distance=1)
    _loop_control(g, "acc")
    return g


def predicated_select() -> DependenceGraph:
    """An if-converted select: compare feeds a conditional move — the
    pattern predicated machines run without branches."""
    g = DependenceGraph("predicated-select")
    for name, opcode in [
        ("a_x", "addr_gen"), ("ld_x", "load_s"),
        ("cmp", "icmp"), ("take_a", "mov"), ("take_b", "mov"),
        ("st", "store_s"),
    ]:
        g.add_operation(name, opcode)
    _dep(g, "a_x", "ld_x")
    _dep(g, "ld_x", "cmp")
    _dep(g, "cmp", "take_a")
    _dep(g, "cmp", "take_b")
    _dep(g, "take_a", "st")
    _dep(g, "take_b", "st")
    _dep(g, "a_x", "st")
    _loop_control(g, "st")
    return g


#: All named kernels, in a stable order.
KERNELS: Dict[str, Callable[[], DependenceGraph]] = {
    "hydro": hydro_fragment,
    "inner-product": inner_product,
    "first-difference": first_difference,
    "tridiagonal": tridiagonal,
    "daxpy": daxpy,
    "state": state_fragment,
    "matmul-inner": matmul_inner,
    "partial-sums": partial_sums,
    "banded-linear": banded_linear,
    "predicated-select": predicated_select,
}


def all_kernels() -> List[DependenceGraph]:
    """Instantiate every named kernel."""
    return [build() for build in KERNELS.values()]
