"""Synthetic loop benchmark generator (substitute for the paper's 1327
Fortran loops from the Perfect Club, SPEC-89 and the Livermore Kernels).

The generator produces innermost-loop dependence graphs over the Cydra 5
benchmark subset's operation repertoire, calibrated to the published
population statistics (paper Table 5):

* operations per loop: min 2, mean ~17.5, max 161 (log-normal size draw);
* a minority of loops carry recurrences (accumulators / linear
  recurrences) with distance 1 or 2;
* address arithmetic feeds memory traffic; expression trees of FP
  adds/multiplies connect loads to stores; every loop ends in a ``brtop``
  loop-control operation.

Graphs are generated from a seeded RNG, so ``loop_suite(1327)`` is fully
reproducible.
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.scheduler.ddg import DependenceGraph

#: Result latency of each producer opcode (base names; alternatives share
#: their base's latency).  Loads carry the Cydra's long memory latency.
RESULT_LATENCY: Dict[str, int] = {
    "load_s": 18,
    "store_s": 1,
    "addr_gen": 2,
    "iadd": 2,
    "icmp": 2,
    "fadd_s": 5,
    "fmul_s": 5,
    "mov": 2,
    "brtop": 1,
}

#: Relative frequency of computational opcodes in loop bodies.
_COMPUTE_MIX = (
    ("fadd_s", 28),
    ("fmul_s", 22),
    ("iadd", 18),
    ("icmp", 6),
    ("mov", 8),
    ("load_s", 0),  # memory traffic is sized separately below
)

_SIZE_MEAN_LOG = 2.45  # exp(2.45) ~ 11.6 body ops before memory/control
_SIZE_SIGMA_LOG = 0.72
MIN_OPS = 2
MAX_OPS = 161


def _draw_size(rng: random.Random) -> int:
    size = int(round(math.exp(rng.gauss(_SIZE_MEAN_LOG, _SIZE_SIGMA_LOG))))
    return max(MIN_OPS, min(MAX_OPS, size))


def _weighted_choice(rng: random.Random, mix: Sequence) -> str:
    total = sum(weight for _name, weight in mix)
    pick = rng.uniform(0, total)
    for name, weight in mix:
        pick -= weight
        if pick <= 0:
            return name
    return mix[-1][0]


def generate_loop(seed: int, name: Optional[str] = None) -> DependenceGraph:
    """Generate one innermost-loop dependence graph.

    The loop has the shape: address ops feed loads, loads feed an
    expression DAG of FP/integer ops, results feed stores, and a ``brtop``
    closes the iteration control recurrence.  With ~35% probability one
    value chain is turned into a loop-carried recurrence.
    """
    rng = random.Random(0x5EED ^ seed)
    graph = DependenceGraph(name or ("loop%04d" % seed))
    size = _draw_size(rng)

    if size <= 4:
        # Tiny loops: a short compute chain closed by the loop control op.
        previous = None
        for index in range(size - 1):
            opcode = _weighted_choice(rng, _COMPUTE_MIX[:4])
            node = "%s_%d" % (opcode, index)
            graph.add_operation(node, opcode)
            if previous is not None:
                graph.add_dependence(
                    previous, node,
                    RESULT_LATENCY[graph.operation(previous).opcode],
                )
            previous = node
        brtop = "brtop_%d" % (size - 1)
        graph.add_operation(brtop, "brtop")
        graph.add_dependence(brtop, brtop, RESULT_LATENCY["brtop"], distance=1)
        if previous is not None:
            graph.add_dependence(previous, brtop, 1)
        return graph

    # Partition the body: memory traffic scales with size.
    n_loads = max(1, int(round(size * rng.uniform(0.15, 0.3))))
    n_stores = max(1, int(round(size * rng.uniform(0.05, 0.15))))
    n_addr = max(1, (n_loads + n_stores + 1) // 2)
    n_compute = max(1, size - n_loads - n_stores - n_addr - 1)

    counter = [0]

    def fresh(opcode: str) -> str:
        node = "%s_%d" % (opcode, counter[0])
        counter[0] += 1
        graph.add_operation(node, opcode)
        return node

    addr_nodes = [fresh("addr_gen") for _ in range(n_addr)]
    load_nodes = []
    for i in range(n_loads):
        node = fresh("load_s")
        graph.add_dependence(
            rng.choice(addr_nodes), node, RESULT_LATENCY["addr_gen"]
        )
        load_nodes.append(node)

    # Expression DAG: every compute op consumes 1-2 earlier values.
    values = list(load_nodes)
    compute_nodes = []
    for _ in range(n_compute):
        opcode = _weighted_choice(rng, _COMPUTE_MIX)
        node = fresh(opcode)
        for _input in range(rng.choice((1, 2, 2))):
            producer = rng.choice(values)
            latency = RESULT_LATENCY[graph.operation(producer).opcode]
            graph.add_dependence(producer, node, latency)
        values.append(node)
        compute_nodes.append(node)

    store_nodes = []
    for _ in range(n_stores):
        node = fresh("store_s")
        producer = rng.choice(values)
        graph.add_dependence(
            producer, node, RESULT_LATENCY[graph.operation(producer).opcode]
        )
        graph.add_dependence(
            rng.choice(addr_nodes), node, RESULT_LATENCY["addr_gen"]
        )
        store_nodes.append(node)

    # Loop control: brtop closes the iteration counter recurrence.
    brtop = fresh("brtop")
    graph.add_dependence(brtop, brtop, RESULT_LATENCY["brtop"], distance=1)
    anchor = rng.choice(store_nodes + compute_nodes[-1:] or load_nodes)
    graph.add_dependence(anchor, brtop, 1)

    # Optional data recurrence: an accumulator chain of FP adds, or a
    # first-order linear recurrence through a multiply-add.
    if compute_nodes and rng.random() < 0.35:
        head = rng.choice(compute_nodes)
        tail = rng.choice(compute_nodes)
        # Orient the pair so head (transitively) feeds tail before closing
        # the cycle with a loop-carried back edge tail -> head.
        if head != tail and _reaches(graph, tail, head):
            head, tail = tail, head
        if head != tail and not _reaches(graph, head, tail):
            graph.add_dependence(
                head, tail, RESULT_LATENCY[graph.operation(head).opcode]
            )
        distance = rng.choice((1, 1, 1, 2))
        latency = RESULT_LATENCY[graph.operation(tail).opcode]
        graph.add_dependence(tail, head, latency, distance=distance)
    return graph


def _reaches(graph: DependenceGraph, src: str, dst: str) -> bool:
    """True when ``dst`` is reachable from ``src`` over distance-0 edges."""
    stack = [src]
    seen = {src}
    while stack:
        node = stack.pop()
        if node == dst:
            return True
        for edge in graph.successors(node):
            if edge.distance == 0 and edge.dst not in seen:
                seen.add(edge.dst)
                stack.append(edge.dst)
    return False


#: Memoized suites keyed by ``(count, seed)``.  Generating the full
#: 1327-loop population is pure but not free, and corpus benchmarks ask
#: for the identical suite several times per process (batch vs per-loop
#: cells, differential cross-checks); the memo makes repeat calls O(1).
#: Bounded so pathological sweeps over many sizes cannot hoard memory.
_SUITE_MEMO: Dict[Tuple[int, int], List[DependenceGraph]] = {}
_SUITE_MEMO_MAX = 8


def loop_suite(count: int = 1327, seed: int = 0) -> List[DependenceGraph]:
    """The benchmark suite: ``count`` seeded loops (default 1327).

    Pure and memoized: repeat calls with the same ``(count, seed)``
    return the *same graph objects* in a fresh list (callers may reorder
    or slice freely; graphs themselves are treated as immutable by every
    scheduler).  Cross-process determinism is guaranteed by the seeded
    RNG, not the memo — see ``tests/test_workloads.py``.
    """
    key = (count, seed)
    suite = _SUITE_MEMO.get(key)
    if suite is None:
        if len(_SUITE_MEMO) >= _SUITE_MEMO_MAX:
            _SUITE_MEMO.clear()
        suite = [
            generate_loop(seed * 100003 + index) for index in range(count)
        ]
        _SUITE_MEMO[key] = suite
    return list(suite)


def graph_signature(graph: DependenceGraph) -> str:
    """Stable structural fingerprint of one dependence graph.

    Hashes the sorted operation and edge sets, so two graphs compare
    equal iff they have identical names, opcodes, and dependences —
    the currency of the suite-determinism tests and of corpus sharding
    audits.
    """
    ops = sorted(
        (op.name, op.opcode) for op in graph.operations()
    )
    edges = sorted(
        (edge.src, edge.dst, edge.latency, edge.distance)
        for edge in graph.edges()
    )
    payload = repr((graph.name, ops, edges))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
