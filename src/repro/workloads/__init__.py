"""Workloads: the synthetic 1327-loop benchmark and named kernels."""

from repro.workloads.blockgen import DEFAULT_MIX, block_suite, generate_block
from repro.workloads.kernels import KERNELS, all_kernels
from repro.workloads.translate import (
    CYDRA_TO_ALPHA,
    CYDRA_TO_MIPS,
    CYDRA_TO_PLAYDOH,
    PORTS,
    port_graph,
    translate_graph,
)
from repro.workloads.loopgen import (
    MAX_OPS,
    MIN_OPS,
    RESULT_LATENCY,
    generate_loop,
    graph_signature,
    loop_suite,
)

__all__ = [
    "CYDRA_TO_PLAYDOH",
    "DEFAULT_MIX",
    "KERNELS",
    "block_suite",
    "generate_block",
    "MAX_OPS",
    "MIN_OPS",
    "RESULT_LATENCY",
    "all_kernels",
    "generate_loop",
    "graph_signature",
    "loop_suite",
    "CYDRA_TO_ALPHA",
    "CYDRA_TO_MIPS",
    "PORTS",
    "port_graph",
    "translate_graph",
]
