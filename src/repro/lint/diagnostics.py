"""Structured lint diagnostics and reports.

A :class:`Diagnostic` is one finding of the static analyzer: a rule id, a
severity, a :class:`Location` inside the machine description (operation /
resource / cycle, plus the MDL source line when the description came from
a file), a message, and an optional fix hint and machine-readable
evidence.  A :class:`LintReport` aggregates the findings of one run and
renders them as text or as the JSON document consumed by CI.

The JSON layout produced by :meth:`LintReport.to_dict` is stable and
documented in ``docs/lint.md`` (schema version
:data:`REPORT_SCHEMA_VERSION`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import LintConfigError

#: Severity levels, weakest first.  Ordering is meaningful: ``--fail-on``
#: and baseline thresholds compare ranks.
SEVERITIES: Tuple[str, ...] = ("info", "warning", "error")

#: Version tag embedded in every JSON report.
REPORT_SCHEMA_VERSION = 1

_RANK = {name: rank for rank, name in enumerate(SEVERITIES)}


def severity_rank(severity: str) -> int:
    """Numeric rank of a severity name (higher is worse)."""
    try:
        return _RANK[severity]
    except KeyError:
        raise LintConfigError(
            "unknown severity %r (choose from %s)"
            % (severity, ", ".join(SEVERITIES))
        ) from None


@dataclass(frozen=True)
class Location:
    """Where a finding points.

    Machine-plane findings use ``operation`` / ``resource`` / ``cycle``
    (plus the MDL source ``line``); code-plane findings use ``file`` /
    ``symbol`` / ``line``.  All fields are optional; a location with no
    fields set refers to the machine description as a whole.
    """

    operation: Optional[str] = None
    resource: Optional[str] = None
    cycle: Optional[int] = None
    line: Optional[int] = None
    file: Optional[str] = None
    symbol: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready mapping with ``None`` fields omitted."""
        result: Dict[str, object] = {}
        for key in ("file", "symbol", "operation", "resource", "cycle",
                    "line"):
            value = getattr(self, key)
            if value is not None:
                result[key] = value
        return result

    def __str__(self) -> str:
        if self.file is not None:
            text = self.file
            if self.line is not None:
                text += ":%d" % self.line
            if self.symbol is not None:
                text += " (%s)" % self.symbol
            return text
        parts = []
        if self.operation is not None:
            parts.append("operation %s" % self.operation)
        if self.resource is not None:
            parts.append("resource %s" % self.resource)
        if self.cycle is not None:
            parts.append("cycle %d" % self.cycle)
        text = ", ".join(parts) if parts else "machine"
        if self.line is not None:
            text += " (line %d)" % self.line
        return text


@dataclass
class Diagnostic:
    """One finding of the lint pass."""

    rule: str
    severity: str
    message: str
    location: Location = field(default_factory=Location)
    hint: Optional[str] = None
    evidence: Optional[Dict[str, object]] = None

    @property
    def rank(self) -> int:
        return severity_rank(self.severity)

    def suppression_key(self) -> str:
        """Stable identity used by baseline files.

        Source lines are deliberately excluded so that reformatting an
        MDL (or Python) file does not invalidate a baseline; code-plane
        findings match on file and symbol instead.
        """
        loc = self.location
        return "|".join(
            "" if part is None else str(part)
            for part in (
                self.rule,
                loc.operation,
                loc.resource,
                loc.cycle,
                loc.file,
                loc.symbol,
            )
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready mapping (see ``docs/lint.md`` for the schema)."""
        result: Dict[str, object] = {
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "location": self.location.to_dict(),
        }
        if self.hint is not None:
            result["hint"] = self.hint
        if self.evidence:
            result["evidence"] = self.evidence
        return result

    def render(self) -> str:
        """One-line human-readable form."""
        text = "%s[%s] %s: %s" % (
            self.severity,
            self.rule,
            self.location,
            self.message,
        )
        if self.hint:
            text += "\n    hint: %s" % self.hint
        return text


@dataclass
class LintReport:
    """The outcome of linting one machine description."""

    machine: str
    diagnostics: List[Diagnostic] = field(default_factory=list)
    against: Optional[str] = None
    rules_run: Tuple[str, ...] = ()
    suppressed: int = 0

    def count(self, severity: str) -> int:
        """Number of findings at exactly ``severity``."""
        severity_rank(severity)  # validate
        return sum(1 for d in self.diagnostics if d.severity == severity)

    @property
    def counts(self) -> Dict[str, int]:
        """Finding counts per severity, every severity present."""
        return {name: self.count(name) for name in SEVERITIES}

    def at_or_above(self, severity: str) -> List[Diagnostic]:
        """Findings whose severity is at least ``severity``."""
        threshold = severity_rank(severity)
        return [d for d in self.diagnostics if d.rank >= threshold]

    def exceeds(self, severity: str) -> bool:
        """True when any finding reaches the given severity."""
        return bool(self.at_or_above(severity))

    @property
    def is_clean(self) -> bool:
        """True when no finding is a warning or an error."""
        return not self.exceeds("warning")

    def sorted(self) -> "LintReport":
        """Copy with findings ordered worst-first, then by rule and place.

        The key covers every location field plus the message, so two runs
        over the same inputs render byte-identical reports — ``--format
        json`` output is safe to diff or hash in CI.
        """
        ordered = sorted(
            self.diagnostics,
            key=lambda d: (
                -d.rank,
                d.location.file or "",
                d.rule,
                d.location.operation or "",
                d.location.resource or "",
                d.location.symbol or "",
                d.location.cycle if d.location.cycle is not None else -1,
                d.location.line if d.location.line is not None else -1,
                d.message,
            ),
        )
        return LintReport(
            machine=self.machine,
            diagnostics=ordered,
            against=self.against,
            rules_run=self.rules_run,
            suppressed=self.suppressed,
        )

    def to_dict(self) -> Dict[str, object]:
        """The stable JSON document (schema in ``docs/lint.md``)."""
        summary = self.counts
        summary["suppressed"] = self.suppressed
        return {
            "version": REPORT_SCHEMA_VERSION,
            "machine": self.machine,
            "against": self.against,
            "rules": list(self.rules_run),
            "summary": summary,
            "diagnostics": [d.to_dict() for d in self.sorted().diagnostics],
        }

    def render_text(self, show_info: bool = False) -> str:
        """Human-readable report.

        ``info`` findings are summarized but not listed unless
        ``show_info`` is set, so a description with no warnings or errors
        reads as clean at a glance.
        """
        shown = [
            d
            for d in self.sorted().diagnostics
            if show_info or d.severity != "info"
        ]
        lines = [d.render() for d in shown]
        counts = self.counts
        summary = "%s: %s — %d error(s), %d warning(s), %d info" % (
            self.machine,
            "clean" if self.is_clean else "findings",
            counts["error"],
            counts["warning"],
            counts["info"],
        )
        if self.suppressed:
            summary += ", %d suppressed by baseline" % self.suppressed
        if counts["info"] and not show_info:
            summary += " (re-run with --show-info to list info findings)"
        lines.append(summary)
        return "\n".join(lines)
