"""The pluggable lint-rule registry and the analysis driver.

A lint rule is a function from a :class:`LintContext` to an iterable of
:class:`~repro.lint.diagnostics.Diagnostic` findings, registered with the
:func:`rule` decorator::

    @rule(
        "my-rule",
        severity="warning",
        summary="what the rule detects",
    )
    def _check_my_rule(ctx):
        if something_is_off(ctx.machine):
            yield finding("explain it", operation="add")

Rules declare a *scope*:

``machine``
    Needs a validated :class:`MachineDescription` (``ctx.machine``).
``usages``
    Operates on raw ``(operation, resource, cycle, line)`` usages, so it
    also runs on MDL files that fail semantic validation — this is how
    well-formedness rules report negative cycles that
    :class:`~repro.core.reservation.ReservationTable` would reject.
``code``
    Operates on a parsed Python source file of this repository (a
    :class:`~repro.lint.code.CodeContext`) — the *code plane* that
    audits determinism, work accounting, and budget invariants of the
    implementation itself.  Code rules never run against machine
    contexts and vice versa.

:func:`lint_machine` runs the rules over an in-memory description;
:func:`lint_source` runs them over a parsed MDL file, falling back to
the ``usages`` scope (plus an ``invalid-machine`` finding) when the file
does not validate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.forbidden import ForbiddenLatencyMatrix
from repro.core.machine import MachineDescription
from repro.errors import LintConfigError, ParseError
from repro.lint.diagnostics import (
    Diagnostic,
    LintReport,
    Location,
    severity_rank,
)
from repro.mdl.format import RawMachine

#: Registry of known rules, id -> LintRule.
_REGISTRY: Dict[str, "LintRule"] = {}


class LintContext:
    """Everything a rule may inspect.

    Parameters
    ----------
    machine:
        The validated description, or ``None`` when only raw usages are
        available (an MDL file that failed semantic validation).
    raw:
        The :class:`~repro.mdl.format.RawMachine` when linting a file;
        supplies source line numbers for locations.
    reference:
        The ``--against`` reference description, if any.
    options:
        Free-form rule options (e.g. ``max_cycle``).
    """

    def __init__(
        self,
        machine: Optional[MachineDescription],
        raw: Optional[RawMachine] = None,
        reference: Optional[MachineDescription] = None,
        options: Optional[Mapping[str, object]] = None,
    ):
        self.machine = machine
        self.raw = raw
        self.reference = reference
        self.options = dict(options or {})
        self._matrix: Optional[ForbiddenLatencyMatrix] = None
        self._reference_matrix: Optional[ForbiddenLatencyMatrix] = None

    @property
    def matrix(self) -> ForbiddenLatencyMatrix:
        """Forbidden-latency matrix of the machine (computed once)."""
        if self._matrix is None:
            if self.machine is None:
                raise LintConfigError(
                    "matrix unavailable: machine failed validation"
                )
            self._matrix = ForbiddenLatencyMatrix.from_machine(self.machine)
        return self._matrix

    @property
    def reference_matrix(self) -> ForbiddenLatencyMatrix:
        """Forbidden-latency matrix of the reference description."""
        if self._reference_matrix is None:
            if self.reference is None:
                raise LintConfigError("no reference description given")
            self._reference_matrix = ForbiddenLatencyMatrix.from_machine(
                self.reference
            )
        return self._reference_matrix

    def option(self, name: str, default: object = None) -> object:
        return self.options.get(name, default)

    def usage_items(self) -> Iterable[Tuple[str, str, int, Optional[int]]]:
        """Every ``(operation, resource, cycle, line)`` usage.

        Drawn from the raw parse when available (so lines are real),
        otherwise from the built machine (lines are ``None``).
        """
        if self.raw is not None:
            yield from self.raw.iter_usages()
            return
        assert self.machine is not None
        for op in self.machine.operation_names:
            for resource, cycle in self.machine.table(op).iter_usages():
                yield op, resource, cycle, None

    def locate(
        self,
        operation: Optional[str] = None,
        resource: Optional[str] = None,
        cycle: Optional[int] = None,
        line: Optional[int] = None,
    ) -> Location:
        """Build a :class:`Location`, resolving the source line if known."""
        if line is None and self.raw is not None:
            if operation is not None and resource is not None and (
                cycle is not None
            ):
                line = self.raw.usage_line(operation, resource, cycle)
            if line is None and operation is not None:
                line = self.raw.operation_line(operation)
            if line is None and resource is not None:
                line = self.raw.resource_line(resource)
        return Location(
            operation=operation, resource=resource, cycle=cycle, line=line
        )


@dataclass(frozen=True)
class LintRule:
    """A registered rule: identity, default severity, and its check."""

    id: str
    severity: str
    summary: str
    check: Callable[[LintContext], Iterable[Diagnostic]]
    scope: str = "machine"
    requires_reference: bool = False

    def applies(self, ctx: LintContext) -> bool:
        is_code = bool(getattr(ctx, "is_code", False))
        if self.scope == "code":
            return is_code
        if is_code:
            return False
        if self.requires_reference and ctx.reference is None:
            return False
        if self.scope == "machine" and ctx.machine is None:
            return False
        return True


def rule(
    rule_id: str,
    severity: str,
    summary: str,
    scope: str = "machine",
    requires_reference: bool = False,
):
    """Register a lint rule (decorator).

    The decorated generator yields findings created with :func:`finding`;
    the driver stamps them with the rule id and (possibly overridden)
    severity.
    """
    severity_rank(severity)  # validate eagerly
    if scope not in ("machine", "usages", "code"):
        raise LintConfigError("unknown rule scope %r" % scope)

    def decorate(fn):
        if rule_id in _REGISTRY:
            raise LintConfigError("duplicate lint rule id %r" % rule_id)
        _REGISTRY[rule_id] = LintRule(
            id=rule_id,
            severity=severity,
            summary=summary,
            check=fn,
            scope=scope,
            requires_reference=requires_reference,
        )
        return fn

    return decorate


def finding(
    message: str,
    location: Optional[Location] = None,
    hint: Optional[str] = None,
    evidence: Optional[Dict[str, object]] = None,
) -> Diagnostic:
    """A partially-filled finding; the driver stamps rule and severity."""
    return Diagnostic(
        rule="",
        severity="info",
        message=message,
        location=location or Location(),
        hint=hint,
        evidence=evidence,
    )


def registered_rules() -> List[LintRule]:
    """All known rules, sorted by id (importing the built-ins lazily)."""
    import repro.lint.code  # noqa: F401  (registers the code-plane rules)
    import repro.lint.rules  # noqa: F401  (registers the built-in rules)

    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rules(ids: Optional[Sequence[str]] = None) -> List[LintRule]:
    """Resolve rule ids to rules; ``None`` selects every registered rule."""
    rules = registered_rules()
    if ids is None:
        return rules
    by_id = {r.id: r for r in rules}
    unknown = [rule_id for rule_id in ids if rule_id not in by_id]
    if unknown:
        raise LintConfigError(
            "unknown lint rule(s) %s; known rules: %s"
            % (", ".join(sorted(unknown)), ", ".join(sorted(by_id)))
        )
    return [by_id[rule_id] for rule_id in ids]


def _run(
    ctx: LintContext,
    machine_name: str,
    rules: Optional[Sequence[str]],
    severity_overrides: Optional[Mapping[str, str]],
    baseline,
    extra: Sequence[Diagnostic] = (),
) -> LintReport:
    overrides = dict(severity_overrides or {})
    for rule_id, severity in overrides.items():
        severity_rank(severity)
        get_rules([rule_id])
    selected = get_rules(rules)
    diagnostics: List[Diagnostic] = list(extra)
    ran: List[str] = []
    for lint_rule in selected:
        if not lint_rule.applies(ctx):
            continue
        ran.append(lint_rule.id)
        severity = overrides.get(lint_rule.id, lint_rule.severity)
        for diag in lint_rule.check(ctx):
            diag.rule = lint_rule.id
            diag.severity = severity
            diagnostics.append(diag)
    suppressed = 0
    if baseline is not None:
        kept = []
        for diag in diagnostics:
            if baseline.matches(machine_name, diag):
                suppressed += 1
            else:
                kept.append(diag)
        diagnostics = kept
    return LintReport(
        machine=machine_name,
        diagnostics=diagnostics,
        against=ctx.reference.name if ctx.reference is not None else None,
        rules_run=tuple(ran),
        suppressed=suppressed,
    ).sorted()


def lint_machine(
    machine: MachineDescription,
    against: Optional[MachineDescription] = None,
    raw: Optional[RawMachine] = None,
    rules: Optional[Sequence[str]] = None,
    severity_overrides: Optional[Mapping[str, str]] = None,
    baseline=None,
    options: Optional[Mapping[str, object]] = None,
) -> LintReport:
    """Run the lint rules over a validated machine description.

    Parameters
    ----------
    machine:
        The description under audit.
    against:
        Optional reference description; enables the equivalence rules.
    raw:
        The raw parse the machine came from, for source locations.
    rules:
        Rule ids to run (default: all registered rules).
    severity_overrides:
        Mapping ``rule id -> severity`` replacing rule defaults.
    baseline:
        A :class:`~repro.lint.baseline.Baseline`; matching findings are
        dropped and counted in ``report.suppressed``.
    options:
        Rule options (e.g. ``{"max_cycle": 512}``).
    """
    ctx = LintContext(
        machine, raw=raw, reference=against, options=options
    )
    return _run(ctx, machine.name, rules, severity_overrides, baseline)


def lint_source(
    raw: RawMachine,
    against: Optional[MachineDescription] = None,
    rules: Optional[Sequence[str]] = None,
    severity_overrides: Optional[Mapping[str, str]] = None,
    baseline=None,
    options: Optional[Mapping[str, object]] = None,
) -> LintReport:
    """Run the lint rules over a parsed MDL document.

    When the document validates, this is :func:`lint_machine` with source
    locations attached.  When semantic validation fails, the ``usages``
    -scope rules still run and the validation failure itself is reported
    as an ``invalid-machine`` error, so a broken file yields diagnostics
    instead of a crash.
    """
    try:
        machine = raw.build()
    except ParseError as exc:
        ctx = LintContext(None, raw=raw, reference=against, options=options)
        extra = [
            Diagnostic(
                rule="invalid-machine",
                severity="error",
                message=exc.raw_message,
                location=Location(line=exc.line),
                hint="fix the description before semantic rules can run",
            )
        ]
        return _run(
            ctx,
            raw.name or "<invalid>",
            rules,
            severity_overrides,
            baseline,
            extra=extra,
        )
    return lint_machine(
        machine,
        against=against,
        raw=raw,
        rules=rules,
        severity_overrides=severity_overrides,
        baseline=baseline,
        options=options,
    )
