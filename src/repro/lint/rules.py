"""The built-in lint rules.

Each rule enforces one consequence of the paper's theory (the docstring
of every check names the section it is grounded in; ``docs/lint.md``
carries the full citations).  Default severities follow intent:

``error``
    The description is wrong — it cannot mean what its author intended
    (broken equivalence, ill-formed cycles).
``warning``
    Almost certainly a defect of the description itself (rows that
    constrain nothing, operations that constrain nothing, alternatives
    that can never help).
``info``
    The description is correct but not minimal — exactly the kind of
    redundancy the paper's reduction exists to remove.  A *physical*
    description is expected to trigger these; they become actionable
    when auditing a description meant to be reduced.
"""

from __future__ import annotations

import re

from repro.analysis.redundancy import redundant_resources
from repro.core.elementary import usages_compatible
from repro.core.witness import find_witness
from repro.lint.registry import finding, rule

#: Synthesized resource rows follow the ``q<N>`` naming convention of
#: :func:`repro.core.reduce.machine_from_selection`.
_SYNTHESIZED_ROW = re.compile(r"^q\d+$")

#: Default bound for the ``cycle-overflow`` rule (option ``max_cycle``).
DEFAULT_MAX_CYCLE = 512

#: Default cap on reported equivalence mismatches (option
#: ``mismatch_limit``).
DEFAULT_MISMATCH_LIMIT = 20


@rule(
    "unused-resource",
    severity="warning",
    summary="a declared resource row is used by no operation",
)
def _check_unused_resource(ctx):
    """A row with an empty usage set generates no forbidden latency
    (Section 3): it cannot affect any scheduling decision."""
    machine = ctx.machine
    used = set()
    for op in machine.operation_names:
        used.update(machine.table(op).resources)
    for resource in machine.resources:
        if resource not in used:
            yield finding(
                "resource %r is declared but used by no operation; it"
                " imposes no scheduling constraint" % resource,
                location=ctx.locate(resource=resource),
                hint="delete the row, or add the missing usages",
            )


@rule(
    "empty-operation",
    severity="warning",
    summary="an operation reserves no resources at all",
)
def _check_empty_operation(ctx):
    """Any operation that uses at least one resource forbids latency 0
    against itself (z = y gives y - z = 0 in Section 3's formula).  An
    operation missing that self-conflict reserves nothing: a scheduler
    may issue unboundedly many copies of it in one cycle."""
    machine = ctx.machine
    for op in machine.operation_names:
        if machine.table(op).is_empty:
            yield finding(
                "operation %r uses no resources, so it does not even"
                " forbid latency 0 against itself; unboundedly many"
                " copies can issue in one cycle" % op,
                location=ctx.locate(operation=op),
                hint="reserve at least an issue slot, or drop the"
                " operation",
            )


@rule(
    "negative-cycle",
    severity="error",
    summary="a usage has a negative cycle index",
    scope="usages",
)
def _check_negative_cycle(ctx):
    """Reservation tables index cycles relative to issue time; a
    negative index is meaningless (and rejected by
    :class:`~repro.core.reservation.ReservationTable`)."""
    for op, resource, cycle, line in ctx.usage_items():
        if cycle < 0:
            yield finding(
                "operation %r uses resource %r at negative cycle %d"
                % (op, resource, cycle),
                location=ctx.locate(
                    operation=op, resource=resource, cycle=cycle, line=line
                ),
                hint="cycles are offsets from the issue cycle and must"
                " be >= 0",
            )


@rule(
    "cycle-overflow",
    severity="warning",
    summary="a usage cycle is implausibly large",
    scope="usages",
)
def _check_cycle_overflow(ctx):
    """Every extra table column costs state in any query representation
    (bitvectors, automata); a cycle orders of magnitude beyond real
    pipeline depths is almost always a typo."""
    limit = int(ctx.option("max_cycle", DEFAULT_MAX_CYCLE))
    for op, resource, cycle, line in ctx.usage_items():
        if cycle > limit:
            yield finding(
                "operation %r uses resource %r at cycle %d, beyond the"
                " plausibility bound %d" % (op, resource, cycle, limit),
                location=ctx.locate(
                    operation=op, resource=resource, cycle=cycle, line=line
                ),
                hint="likely a typo; raise --max-cycle if the depth is"
                " intentional",
            )


@rule(
    "duplicate-alternative",
    severity="warning",
    summary="two alternatives of one group have identical tables",
)
def _check_duplicate_alternative(ctx):
    """Alternative variants exist to offer *different* resource usages
    (Section 3's preprocessing).  Identical variants only enlarge the
    scheduler's search space."""
    machine = ctx.machine
    for base, variants in sorted(machine.alternatives.items()):
        tables = [machine.table(v) for v in variants]
        for j in range(1, len(variants)):
            for i in range(j):
                if tables[i] == tables[j]:
                    yield finding(
                        "alternatives %r and %r of group %r have"
                        " identical reservation tables"
                        % (variants[i], variants[j], base),
                        location=ctx.locate(operation=variants[j]),
                        hint="remove one variant; duplicates double the"
                        " alternatives search for no benefit",
                        evidence={"group": base, "duplicates": variants[i]},
                    )
                    break


@rule(
    "dominated-alternative",
    severity="warning",
    summary="an alternative strictly contains another's usages",
)
def _check_dominated_alternative(ctx):
    """A variant whose usage set is a strict superset of a sibling's can
    never be the better choice: wherever it fits, the smaller variant
    fits too.  Schedulers trying it only waste decisions."""
    machine = ctx.machine
    for base, variants in sorted(machine.alternatives.items()):
        usage_sets = {
            v: frozenset(machine.table(v).iter_usages()) for v in variants
        }
        for loser in variants:
            for winner in variants:
                if loser == winner:
                    continue
                if usage_sets[winner] < usage_sets[loser]:
                    yield finding(
                        "alternative %r of group %r is dominated by %r:"
                        " its usages strictly contain the other's"
                        % (loser, base, winner),
                        location=ctx.locate(operation=loser),
                        hint="remove the dominated variant; %r is always"
                        " at least as schedulable" % winner,
                        evidence={"group": base, "dominated_by": winner},
                    )
                    break


@rule(
    "redundant-resource",
    severity="info",
    summary="a resource row is implied by the remaining rows",
)
def _check_redundant_resource(ctx):
    """Every forbidden latency the row generates is also generated by
    the other rows (Section 6's 'manual optimization', automated by
    :mod:`repro.analysis.redundancy`).  Expected in physical
    descriptions — it is what the reduction removes — but worth knowing
    about, and suspicious in an already-reduced description."""
    for resource in redundant_resources(ctx.machine):
        yield finding(
            "resource %r introduces no forbidden latency beyond those of"
            " the other rows" % resource,
            location=ctx.locate(resource=resource),
            hint="drop it with analysis.redundancy.drop_resources, or"
            " run the full reduction",
        )


@rule(
    "collapsible-operations",
    severity="info",
    summary="operations with identical forbidden rows and columns",
)
def _check_collapsible_operations(ctx):
    """Operations whose forbidden-latency rows *and* columns coincide
    for every third operation form one operation class (Section 3) and
    are interchangeable for any scheduler."""
    for members in ctx.matrix.operation_classes():
        if len(members) < 2:
            continue
        yield finding(
            "operations %s are mutually interchangeable (one operation"
            " class); the description repeats their constraints"
            % ", ".join(repr(m) for m in members),
            location=ctx.locate(operation=members[0]),
            hint="collapse them with core.collapse_to_classes and map"
            " class members to the representative %r" % members[0],
            evidence={"class": list(members)},
        )


@rule(
    "non-maximal-resource",
    severity="warning",
    summary="a synthesized row is not part of any maximal resource of"
    " the reference",
    requires_reference=True,
)
def _check_non_maximal_resource(ctx):
    """Every row the reduction emits is carved out of a *maximal*
    resource of the original machine's matrix (Algorithm 1, Section 4;
    the selection of Section 5 only ever takes subsets).  Equivalently —
    Theorem 1's invariant — every pair of usages in a synthesized row
    must generate a latency the reference already forbids.  A ``q<N>``
    row violating this was edited by hand or produced by a broken tool:
    it forbids schedules the reference machine allows."""
    machine = ctx.machine
    reference = ctx.reference_matrix
    for resource in machine.resources:
        if not _SYNTHESIZED_ROW.match(resource):
            continue
        usages = sorted(
            (op, cycle)
            for op in machine.operation_names
            for cycle in machine.table(op).usage_set(resource)
        )
        for index, (op_u, cycle_u) in enumerate(usages):
            for op_v, cycle_v in usages[index + 1:]:
                if not usages_compatible(
                    (op_u, cycle_u), (op_v, cycle_v), reference
                ):
                    yield finding(
                        "synthesized resource %r is not part of any"
                        " maximal resource of reference %r: usages"
                        " (%s, %d) and (%s, %d) generate a latency the"
                        " reference allows"
                        % (
                            resource,
                            ctx.reference.name,
                            op_u,
                            cycle_u,
                            op_v,
                            cycle_v,
                        ),
                        location=ctx.locate(resource=resource),
                        hint="the row over-constrains the machine;"
                        " rebuild it with reduce_machine",
                        evidence={
                            "usages": [
                                [op_u, cycle_u],
                                [op_v, cycle_v],
                            ],
                            "latency": cycle_v - cycle_u,
                        },
                    )
                    break
            else:
                continue
            break


@rule(
    "unpipelined-operation",
    severity="info",
    summary="an operation conflicts with itself at positive latencies",
)
def _check_unpipelined_operation(ctx):
    """Positive self-latencies mean back-to-back issue of the operation
    is structurally impossible at those distances — an unpipelined (or
    partially pipelined) unit.  Correct for real hardware, but it raises
    the resource-constrained lower bound on the initiation interval."""
    matrix = ctx.matrix
    for op in matrix.operations:
        positive = sorted(
            latency for latency in matrix.latencies(op, op) if latency > 0
        )
        if positive:
            if len(positive) == 1:
                message = (
                    "operation %r conflicts with itself %d cycles after"
                    " issue: the unit is not fully pipelined"
                    % (op, positive[0])
                )
            else:
                message = (
                    "operation %r conflicts with itself at latencies %s:"
                    " the unit is not fully pipelined" % (op, positive)
                )
            yield finding(
                message,
                location=ctx.locate(operation=op),
                hint="expected for multi-cycle units; raises ResMII for"
                " loops issuing %r every iteration" % op,
                evidence={"self_latencies": positive},
            )


@rule(
    "equivalence-mismatch",
    severity="error",
    summary="forbidden latencies disagree with the reference",
    requires_reference=True,
)
def _check_equivalence_mismatch(ctx):
    """The audit of Section 3's equivalence criterion: the description
    preserves the reference's scheduling constraints iff both induce the
    same forbidden-latency matrix.  Each differing pair is reported; the
    first carries a concrete witness schedule — a two-operation placement
    legal on one description and colliding on the other — as evidence."""
    diffs = ctx.matrix.differences(ctx.reference_matrix)
    if not diffs:
        return
    limit = int(ctx.option("mismatch_limit", DEFAULT_MISMATCH_LIMIT))
    witness = find_witness(ctx.machine, ctx.reference)
    for index, (op_x, op_y, only_here, only_ref) in enumerate(diffs):
        if index >= limit:
            yield finding(
                "%d further differing operation pairs omitted"
                " (raise --mismatch-limit to list them)"
                % (len(diffs) - limit),
                evidence={"omitted": len(diffs) - limit},
            )
            break
        evidence = {
            "pair": [op_x, op_y],
            "only_machine": sorted(only_here),
            "only_reference": sorted(only_ref),
        }
        if index == 0 and witness is not None:
            evidence["witness"] = {
                "placements": [
                    [op, cycle] for op, cycle in witness.placements
                ],
                "legal_on": witness.legal_on,
                "conflicts_on": witness.conflicts_on,
                "description": witness.describe(),
            }
        yield finding(
            "forbidden latencies of %r after %r disagree with reference"
            " %r: only here %s, only in reference %s"
            % (
                op_x,
                op_y,
                ctx.reference.name,
                sorted(only_here),
                sorted(only_ref),
            ),
            location=ctx.locate(operation=op_x),
            hint="the two descriptions admit different schedules; one of"
            " them is wrong",
            evidence=evidence,
        )
