"""Code-plane lint: AST rules auditing the implementation itself.

The machine-plane rules (:mod:`repro.lint.rules`) audit *descriptions*;
the rules here audit the *code* that manipulates them, enforcing three
repo invariants the test suite cannot see locally:

determinism
    Nothing order-sensitive may iterate a ``set`` — schedule priority,
    resource selection, and report layouts must not depend on hash
    order (``code-unordered-iteration``) — and every random draw must
    come from an *explicitly seeded* ``random.Random`` instance, never
    the process-seeded global RNG (``code-unseeded-random``).
accounting
    Every cycle loop in a query backend must charge
    :class:`~repro.query.work.WorkCounters` (or delegate to an entry
    point that does), so the paper's work-unit comparisons stay honest
    (``code-uncharged-loop``); and every charged currency must exist in
    the shared :data:`repro.query.work.FUNCTIONS` registry so no work
    is invisible to exporters (``code-unregistered-currency``).
budget + robustness invariants
    Long loops that carry a ``budget`` must checkpoint it
    (``code-missing-budget-checkpoint``); artifact writes must go
    through :mod:`repro._atomic` (``code-nonatomic-write``); and broad
    exception handlers must not swallow the structured error hierarchy
    (``code-broad-except``).
provenance
    Scheduler-layer ``ScheduleError`` raises must attach the active
    decision ledger's tail (``code-unattributed-raise``) so failures
    stay explainable by the fallback ladder and ``repro explain``.

Rules register in the shared registry with ``scope="code"`` and run
over a :class:`CodeContext` per Python source file; findings ride the
same :class:`~repro.lint.diagnostics.Diagnostic` / baseline / report
machinery as machine findings, filed under the report name ``"code"``.
Entry point: :func:`lint_code_paths` (CLI: ``repro lint --code``).
"""

from __future__ import annotations

import ast
import os
from typing import (
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import LintConfigError
from repro.lint.diagnostics import Diagnostic, LintReport, Location
from repro.lint.registry import _run, finding, rule

#: Report (and baseline "machine") name for code-plane runs.
CODE_REPORT_NAME = "code"

#: Rule id stamped on files that do not parse.
INVALID_SOURCE_RULE = "invalid-source"


# ----------------------------------------------------------------------
# Context
# ----------------------------------------------------------------------
class CodeContext:
    """One Python source file under audit.

    Duck-typed against :class:`~repro.lint.registry.LintContext`: the
    ``is_code`` marker routes rule dispatch (machine rules skip code
    contexts and vice versa), and ``machine`` / ``raw`` / ``reference``
    are present-but-``None`` so the shared driver works unchanged.
    """

    is_code = True

    def __init__(
        self,
        path: str,
        display_path: str,
        source: str,
        tree: Optional[ast.AST],
        options: Optional[Mapping[str, object]] = None,
    ):
        self.path = path
        self.display_path = display_path
        self.source = source
        self.tree = tree
        self.options = dict(options or {})
        self.machine = None
        self.raw = None
        self.reference = None
        self._parents: Optional[Dict[int, ast.AST]] = None
        self._functions: Optional[List[Tuple[str, ast.AST]]] = None

    @property
    def basename(self) -> str:
        return self.display_path.rsplit("/", 1)[-1]

    @property
    def subsystem(self) -> str:
        """Package directory directly under ``repro`` ("core", "query", …)."""
        parts = self.display_path.split("/")
        if len(parts) >= 3 and parts[0] == "repro":
            return parts[1]
        return ""

    def option(self, name: str, default: object = None) -> object:
        return self.options.get(name, default)

    def locate(
        self,
        node: Optional[ast.AST] = None,
        line: Optional[int] = None,
        symbol: Optional[str] = None,
    ) -> Location:
        """A code location: this file, plus line and enclosing symbol."""
        if line is None and node is not None:
            line = getattr(node, "lineno", None)
        if symbol is None and node is not None:
            symbol = self.enclosing_symbol(node)
        return Location(file=self.display_path, line=line, symbol=symbol)

    def parent_map(self) -> Dict[int, ast.AST]:
        """Map ``id(child) -> parent`` over the whole tree (cached)."""
        if self._parents is None:
            parents: Dict[int, ast.AST] = {}
            if self.tree is not None:
                for node in ast.walk(self.tree):
                    for child in ast.iter_child_nodes(node):
                        parents[id(child)] = node
            self._parents = parents
        return self._parents

    def functions(self) -> List[Tuple[str, ast.AST]]:
        """Every function definition as ``(qualname, node)``, in source
        order, with class and nesting prefixes (``Cls.method``)."""
        if self._functions is None:
            found: List[Tuple[str, ast.AST]] = []

            def visit(node: ast.AST, prefix: str) -> None:
                for child in ast.iter_child_nodes(node):
                    if isinstance(
                        child, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        qual = prefix + child.name
                        found.append((qual, child))
                        visit(child, qual + ".")
                    elif isinstance(child, ast.ClassDef):
                        visit(child, prefix + child.name + ".")
                    else:
                        visit(child, prefix)

            if self.tree is not None:
                visit(self.tree, "")
            self._functions = found
        return self._functions

    def enclosing_symbol(self, node: ast.AST) -> Optional[str]:
        """Qualified name of the function containing ``node``, if any."""
        qual_of = {id(fn): qual for qual, fn in self.functions()}
        parents = self.parent_map()
        current: Optional[ast.AST] = node
        while current is not None:
            if isinstance(
                current, (ast.FunctionDef, ast.AsyncFunctionDef)
            ) and id(current) in qual_of:
                return qual_of[id(current)]
            current = parents.get(id(current))
        return None


# ----------------------------------------------------------------------
# Shared AST predicates
# ----------------------------------------------------------------------
_SET_MAKERS = frozenset({"set", "frozenset"})

#: Consumers for which set iteration order cannot leak into results.
_ORDER_INSENSITIVE_CALLS = frozenset(
    {"sorted", "len", "sum", "min", "max", "any", "all", "set", "frozenset"}
)

#: Consumers that freeze iteration order into an ordered container.
_ORDER_SENSITIVE_CALLS = frozenset({"list", "tuple", "enumerate"})


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _SET_MAKERS and not node.keywords
    return False


def _call_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id
    return None


def _loops(node: ast.AST) -> List[ast.AST]:
    return [
        n for n in ast.walk(node) if isinstance(n, (ast.For, ast.While))
    ]


# ----------------------------------------------------------------------
# Rules
# ----------------------------------------------------------------------
@rule(
    "code-unordered-iteration",
    severity="warning",
    summary="set iterated by an order-sensitive consumer "
    "(hash order leaks into results)",
    scope="code",
)
def _check_unordered_iteration(ctx: CodeContext) -> Iterator[Diagnostic]:
    tree = ctx.tree
    if tree is None:
        return
    parents = ctx.parent_map()
    for node in ast.walk(tree):
        if not _is_set_expr(node):
            continue
        parent = parents.get(id(node))
        consumer: Optional[str] = None
        if isinstance(parent, ast.For) and parent.iter is node:
            consumer = "a for loop"
        elif isinstance(parent, ast.comprehension) and parent.iter is node:
            comp = parents.get(id(parent))
            if isinstance(comp, ast.SetComp):
                continue  # set -> set: still unordered, no leak
            if isinstance(comp, ast.GeneratorExp):
                outer = parents.get(id(comp))
                if (
                    outer is not None
                    and _call_name(outer) in _ORDER_INSENSITIVE_CALLS
                ):
                    continue  # sorted(x for x in {…}) and friends
            consumer = "a comprehension"
        elif (
            isinstance(parent, ast.Call)
            and node in parent.args
            and _call_name(parent) in _ORDER_SENSITIVE_CALLS
        ):
            consumer = "%s()" % _call_name(parent)
        if consumer is None:
            continue
        yield finding(
            "iteration order of a set literal/constructor feeds %s; "
            "hash order is not deterministic across runs" % consumer,
            location=ctx.locate(node),
            hint="iterate sorted(...) over the set, or use an ordered "
            "container",
        )


#: Substrings in an identifier that indicate work accounting.
_CHARGE_HINTS = ("work", "units")

#: Method-name prefixes that delegate to a charging entry point.
_DELEGATE_PREFIXES = ("check", "assign", "free", "first_free", "charge")


def _charges_work(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute):
            attr = sub.attr.lower()
            if attr.startswith(_DELEGATE_PREFIXES):
                return True
            if any(hint in attr for hint in _CHARGE_HINTS):
                return True
        elif isinstance(sub, ast.Name):
            name = sub.id.lower()
            if any(hint in name for hint in _CHARGE_HINTS):
                return True
    return False


@rule(
    "code-uncharged-loop",
    severity="warning",
    summary="query-backend loop never charges WorkCounters",
    scope="code",
)
def _check_uncharged_loop(ctx: CodeContext) -> Iterator[Diagnostic]:
    if ctx.tree is None or ctx.subsystem != "query":
        return
    if ctx.basename == "work.py":
        return  # the accounting module itself has nothing to charge
    for qualname, node in ctx.functions():
        if node.name.startswith("__"):
            continue  # constructors and protocol hooks set state, not work
        loops = _loops(node)
        if not loops or _charges_work(node):
            continue
        yield finding(
            "loop in query backend neither charges WorkCounters nor "
            "delegates to a charging check/assign/free entry point",
            location=ctx.locate(loops[0], symbol=qualname),
            hint="charge self.work in the loop, or route it through an "
            "entry point that does — unaccounted loops skew every "
            "work-unit comparison",
        )


def _has_budget_param(node: ast.AST) -> bool:
    args = node.args
    named = list(args.args) + list(args.kwonlyargs)
    if getattr(args, "posonlyargs", None):
        named.extend(args.posonlyargs)
    return any(a.arg == "budget" for a in named)


def _forwards_budget(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Call):
            continue
        values = list(sub.args) + [kw.value for kw in sub.keywords]
        for value in values:
            if isinstance(value, ast.Name) and value.id == "budget":
                return True
    return False


def _calls_checkpoint(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and sub.func.attr == "checkpoint"
        ):
            return True
    return False


@rule(
    "code-missing-budget-checkpoint",
    severity="warning",
    summary="budget-carrying loop lacks a cooperative checkpoint",
    scope="code",
)
def _check_budget_checkpoint(ctx: CodeContext) -> Iterator[Diagnostic]:
    if ctx.tree is None or ctx.subsystem not in ("core", "scheduler"):
        return
    for qualname, node in ctx.functions():
        if not _has_budget_param(node):
            continue
        loops = _loops(node)
        if not loops:
            continue
        if _calls_checkpoint(node) or _forwards_budget(node):
            continue
        yield finding(
            "function accepts a budget and loops, but neither calls "
            "budget.checkpoint(...) nor forwards the budget to a callee",
            location=ctx.locate(loops[0], symbol=qualname),
            hint="checkpoint at iteration boundaries so deadlines and "
            "work caps can cancel cooperatively",
        )


_WRITE_MODE_CHARS = frozenset("wax+")


def _open_mode(node: ast.Call) -> Optional[ast.AST]:
    if len(node.args) >= 2:
        return node.args[1]
    for keyword in node.keywords:
        if keyword.arg == "mode":
            return keyword.value
    return None


@rule(
    "code-nonatomic-write",
    severity="warning",
    summary="file write bypasses the atomic-write helper",
    scope="code",
)
def _check_nonatomic_write(ctx: CodeContext) -> Iterator[Diagnostic]:
    if ctx.tree is None or ctx.basename == "_atomic.py":
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name) and func.id == "open":
            mode = _open_mode(node)
            if mode is None:
                continue  # default mode "r"
            if not (
                isinstance(mode, ast.Constant)
                and isinstance(mode.value, str)
            ):
                continue  # dynamic mode: cannot judge statically
            if not (_WRITE_MODE_CHARS & set(mode.value)):
                continue
            what = "open(..., %r)" % mode.value
        elif isinstance(func, ast.Attribute) and func.attr in (
            "write_text",
            "write_bytes",
        ):
            what = ".%s(...)" % func.attr
        else:
            continue
        yield finding(
            "%s writes in place; a crash mid-write leaves a torn file"
            % what,
            location=ctx.locate(node),
            hint="route writes through repro._atomic (atomic_write_text "
            "/ atomic_write_bytes: temp file + fsync + rename)",
        )


def _exception_names(node: ast.AST) -> List[str]:
    if isinstance(node, ast.Name):
        return [node.id]
    if isinstance(node, ast.Attribute):
        return [node.attr]
    if isinstance(node, ast.Tuple):
        names: List[str] = []
        for element in node.elts:
            names.extend(_exception_names(element))
        return names
    return []


@rule(
    "code-broad-except",
    severity="warning",
    summary="bare or blanket exception handler swallows structured errors",
    scope="code",
)
def _check_broad_except(ctx: CodeContext) -> Iterator[Diagnostic]:
    if ctx.tree is None:
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if node.type is None:
            label = "bare `except:`"
        else:
            broad = [
                name
                for name in _exception_names(node.type)
                if name in ("Exception", "BaseException")
            ]
            if not broad:
                continue
            if any(isinstance(n, ast.Raise) for n in ast.walk(node)):
                continue  # catch-log-reraise is fine
            label = "`except %s` without re-raise" % broad[0]
        yield finding(
            "%s can swallow ReproError subclasses (and even "
            "BudgetExceeded), hiding failures the structured-error "
            "paths are built to surface" % label,
            location=ctx.locate(node),
            hint="catch the narrowest ReproError subclass, or re-raise "
            "after handling",
        )


@rule(
    "code-unattributed-raise",
    severity="info",
    summary="scheduler-layer ScheduleError raised without ledger context",
    scope="code",
)
def _check_unattributed_raise(ctx: CodeContext) -> Iterator[Diagnostic]:
    """Scheduler failures must carry their decision provenance.

    A ``ScheduleError`` raised inside ``repro/scheduler`` without a
    ``ledger_tail=`` keyword strands the caller: the fallback ladder and
    ``repro explain`` cannot say *why* the scheduler gave up.  Passing
    ``ledger_tail=obs_ledger.active_tail()`` costs one ``None`` check
    when no ledger is recording.
    """
    if ctx.tree is None or ctx.subsystem != "scheduler":
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Raise) or node.exc is None:
            continue
        exc = node.exc
        if not isinstance(exc, ast.Call):
            continue
        func = exc.func
        name = (
            func.id if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute)
            else None
        )
        if name != "ScheduleError":
            continue
        if any(kw.arg == "ledger_tail" for kw in exc.keywords):
            continue
        yield finding(
            "ScheduleError raised without ledger_tail=; the fallback "
            "ladder and `repro explain` lose the decision provenance "
            "of this failure",
            location=ctx.locate(node),
            hint="pass ledger_tail=obs_ledger.active_tail() (a no-op "
            "None when no DecisionLedger is recording)",
        )


#: Draw/state methods of the module-level (process-seeded) global RNG.
_GLOBAL_RNG_DRAWS = frozenset(
    {
        "betavariate", "choice", "choices", "expovariate", "gauss",
        "getrandbits", "getstate", "lognormvariate", "normalvariate",
        "paretovariate", "randbytes", "randint", "random", "randrange",
        "sample", "seed", "setstate", "shuffle", "triangular", "uniform",
        "vonmisesvariate", "weibullvariate",
    }
)

#: RNG constructors that take a seed as their first positional argument.
_RNG_CONSTRUCTORS = frozenset({"Random"})


@rule(
    "code-unseeded-random",
    severity="warning",
    summary="random draw not tied to an explicit seed",
    scope="code",
)
def _check_unseeded_random(ctx: CodeContext) -> Iterator[Diagnostic]:
    """Every random draw must come from an explicitly seeded stream.

    The whole repo — fuzz generator, chaos harness, workload suites,
    backoff jitter — promises bit-for-bit reproducibility from a seed.
    Three constructions silently break that promise: calling a draw
    method on the ``random`` *module* (the hidden global ``Random``
    seeded from OS entropy at import), constructing ``Random()`` with
    no seed argument, and ``SystemRandom`` (OS entropy by design).  The
    repo idiom is a string-keyed instance per stream, e.g.
    ``random.Random("mdlgen:%s:%d" % (profile, seed))`` — string seeds
    are immune to ``PYTHONHASHSEED``.
    """
    if ctx.tree is None:
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "random"
            and func.attr in _GLOBAL_RNG_DRAWS
        ):
            yield finding(
                "random.%s() draws from the module-level global RNG, "
                "which is seeded from OS entropy at interpreter start"
                % func.attr,
                location=ctx.locate(node),
                hint="draw from an explicitly seeded random.Random "
                "instance (string-keyed, like the fuzz/chaos streams)",
            )
            continue
        name = (
            func.id if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute)
            else None
        )
        if name == "SystemRandom":
            yield finding(
                "SystemRandom draws OS entropy and can never replay "
                "from a seed",
                location=ctx.locate(node),
                hint="use a seeded random.Random unless this is "
                "explicitly cryptographic (it should not be, here)",
            )
        elif name in _RNG_CONSTRUCTORS and not node.args:
            yield finding(
                "Random() without a seed argument falls back to OS "
                "entropy; the stream cannot be replayed",
                location=ctx.locate(node),
                hint="pass an explicit seed — the repo idiom is a "
                "string key naming the stream and its parameters",
            )


#: Receiver names that identify a WorkCounters charge site
#: (``self.work.charge(...)``, ``counters.charge(...)``).
_COUNTER_RECEIVERS = frozenset({"work", "counters", "work_counters"})


def _registered_currencies() -> Tuple[frozenset, frozenset]:
    """(currency strings, constant names) of the shared registry.

    Imported lazily from :data:`repro.query.work.FUNCTIONS` so the lint
    plane always audits against the registry the runtime actually uses —
    adding a currency in one place updates the rule automatically.
    """
    from repro.query import work

    currencies = frozenset(work.FUNCTIONS)
    constants = frozenset(
        name for name in dir(work)
        if name.isupper() and getattr(work, name) in currencies
    )
    return currencies, constants


def _is_counter_receiver(func: ast.AST) -> bool:
    if not (isinstance(func, ast.Attribute) and func.attr == "charge"):
        return False
    receiver = func.value
    if isinstance(receiver, ast.Attribute):
        return receiver.attr in _COUNTER_RECEIVERS
    if isinstance(receiver, ast.Name):
        return receiver.id in _COUNTER_RECEIVERS
    return False


@rule(
    "code-unregistered-currency",
    severity="warning",
    summary="WorkCounters charge of a currency not in the shared registry",
    scope="code",
)
def _check_unregistered_currency(ctx: CodeContext) -> Iterator[Diagnostic]:
    """Every charged currency must exist in ``repro.query.work.FUNCTIONS``.

    The work-unit registry is the shared vocabulary of the metrics JSON,
    the bench comparator, the runlog, and the OpenMetrics export: a
    charge under an unregistered name is invisible to ``query_summary``
    (which iterates the registry), never gates a bench comparison, and
    silently vanishes from every trend series.  Charges through a string
    literal are checked against the registry values; ALL_CAPS name
    constants are checked against the registry's constant names (local
    variables and other expressions are unresolvable and skipped).
    """
    if ctx.tree is None:
        return
    currencies, constants = _registered_currencies()
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call) or not node.args:
            continue
        if not _is_counter_receiver(node.func):
            continue
        first = node.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            if first.value in currencies:
                continue
            charged = repr(first.value)
        elif isinstance(first, ast.Name) and first.id.isupper():
            if first.id in constants:
                continue
            charged = first.id
        else:
            continue  # dynamically computed currency: unresolvable
        yield finding(
            "charge of currency %s, which is not registered in "
            "repro.query.work.FUNCTIONS" % charged,
            location=ctx.locate(node),
            hint="register the currency constant in query/work.py (and "
            "mirror it in obs/instrument.py) so exporters, the bench "
            "comparator, and the runlog can see the work",
        )


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def default_code_root() -> str:
    """Directory display paths are made relative to: the parent of the
    installed ``repro`` package, so findings read ``repro/core/x.py``."""
    import repro

    package_dir = os.path.dirname(os.path.abspath(repro.__file__))
    return os.path.dirname(package_dir)


def default_code_paths() -> List[str]:
    """What ``repro lint --code`` scans by default: the package itself."""
    import repro

    return [os.path.dirname(os.path.abspath(repro.__file__))]


def iter_python_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted, de-duplicated file list."""
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames if d != "__pycache__"
                )
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        files.append(os.path.join(dirpath, filename))
        elif os.path.isfile(path):
            files.append(path)
        else:
            raise LintConfigError(
                "lint --code path %r is neither a file nor a directory"
                % path
            )
    return sorted(dict.fromkeys(os.path.abspath(f) for f in files))


def _display_path(path: str, root: Optional[str]) -> str:
    if root:
        relative = os.path.relpath(path, os.path.abspath(root))
        if not relative.startswith(".."):
            return relative.replace(os.sep, "/")
    return os.path.basename(path)


def lint_code_paths(
    paths: Optional[Sequence[str]] = None,
    rules: Optional[Sequence[str]] = None,
    severity_overrides: Optional[Mapping[str, str]] = None,
    baseline=None,
    options: Optional[Mapping[str, object]] = None,
    root: Optional[str] = None,
) -> LintReport:
    """Run the code-plane rules over Python sources.

    Parameters mirror :func:`~repro.lint.registry.lint_machine`;
    ``paths`` defaults to the installed ``repro`` package and ``root``
    to its parent (making display paths read ``repro/...``).  Files
    that fail to parse yield an ``invalid-source`` error diagnostic
    instead of aborting the run.  Returns one aggregate report under
    the machine name ``"code"``, sorted byte-deterministically.
    """
    if paths is None:
        paths = default_code_paths()
    if root is None:
        root = default_code_root()
    files = iter_python_files(paths)
    diagnostics: List[Diagnostic] = []
    rules_run: Tuple[str, ...] = ()
    suppressed = 0
    for path in files:
        display = _display_path(path, root)
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        extra: List[Diagnostic] = []
        try:
            tree: Optional[ast.AST] = ast.parse(source, filename=display)
        except SyntaxError as exc:
            tree = None
            extra.append(
                Diagnostic(
                    rule=INVALID_SOURCE_RULE,
                    severity="error",
                    message="file does not parse: %s" % (exc.msg or exc),
                    location=Location(file=display, line=exc.lineno),
                    hint="fix the syntax error before code rules can run",
                )
            )
        ctx = CodeContext(path, display, source, tree, options=options)
        report = _run(
            ctx, CODE_REPORT_NAME, rules, severity_overrides, baseline,
            extra=extra,
        )
        diagnostics.extend(report.diagnostics)
        suppressed += report.suppressed
        if report.rules_run:
            rules_run = report.rules_run
    return LintReport(
        machine=CODE_REPORT_NAME,
        diagnostics=diagnostics,
        rules_run=rules_run,
        suppressed=suppressed,
    ).sorted()


__all__ = [
    "CODE_REPORT_NAME",
    "CodeContext",
    "INVALID_SOURCE_RULE",
    "default_code_paths",
    "default_code_root",
    "iter_python_files",
    "lint_code_paths",
]
