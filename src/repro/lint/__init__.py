"""Static analysis over machine descriptions (``repro lint``).

The paper's criterion (Section 3) — a description is characterized
exactly by the forbidden-latency matrix it induces — makes machine
descriptions *machine-checkable*: redundancy, collapsibility,
non-maximality, and equivalence against a reference are all decidable
properties of that matrix.  This package turns those properties into a
rule-based linter with structured diagnostics:

* :mod:`repro.lint.diagnostics` — :class:`Diagnostic`, :class:`Location`,
  :class:`LintReport` (text and stable-JSON rendering);
* :mod:`repro.lint.registry` — the pluggable rule registry
  (:func:`rule`, :func:`registered_rules`) and the drivers
  (:func:`lint_machine`, :func:`lint_source`);
* :mod:`repro.lint.rules` — the built-in machine-plane rules (see
  ``docs/lint.md`` for the rule reference with paper citations);
* :mod:`repro.lint.code` — the code-plane rules (``repro lint --code``)
  auditing the implementation itself for determinism, work accounting,
  and budget/robustness invariants;
* :mod:`repro.lint.baseline` — suppression files for adopting the
  linter over descriptions (or source trees) with known findings.
"""

from repro.lint.baseline import Baseline, write_baseline
from repro.lint.code import (
    CODE_REPORT_NAME,
    CodeContext,
    lint_code_paths,
)
from repro.lint.diagnostics import (
    REPORT_SCHEMA_VERSION,
    SEVERITIES,
    Diagnostic,
    LintReport,
    Location,
    severity_rank,
)
from repro.lint.registry import (
    LintContext,
    LintRule,
    finding,
    get_rules,
    lint_machine,
    lint_source,
    registered_rules,
    rule,
)

__all__ = [
    "Baseline",
    "CODE_REPORT_NAME",
    "CodeContext",
    "Diagnostic",
    "LintContext",
    "lint_code_paths",
    "LintReport",
    "LintRule",
    "Location",
    "REPORT_SCHEMA_VERSION",
    "SEVERITIES",
    "finding",
    "get_rules",
    "lint_machine",
    "lint_source",
    "registered_rules",
    "rule",
    "severity_rank",
    "write_baseline",
]
