"""Baseline (suppression) files for the lint pass.

A baseline records *known* findings so they stop failing the build while
new findings still do — the standard ratchet for introducing a static
analyzer to an existing codebase.  Entries match on machine name, rule
id, and the structural location (operation / resource / cycle); source
line numbers are ignored so reformatting an MDL file does not invalidate
a baseline.

File format (JSON)::

    {
      "version": 1,
      "suppressions": [
        {
          "machine": "cydra5",
          "rule": "redundant-resource",
          "location": {"resource": "m0.issue"}
        }
      ]
    }

``repro lint --write-baseline FILE`` creates or extends such a file from
the current findings; ``repro lint --baseline FILE`` applies it.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set, Tuple

from repro._atomic import atomic_write_text
from repro.errors import LintConfigError
from repro.lint.diagnostics import Diagnostic, LintReport, Location

#: Version tag of the baseline file format.
BASELINE_SCHEMA_VERSION = 1

#: Internal entry identity: (machine name, diagnostic suppression key).
_Key = Tuple[str, str]


def _entry_key(entry: Dict[str, object]) -> _Key:
    try:
        machine = entry["machine"]
        rule = entry["rule"]
    except (TypeError, KeyError):
        raise LintConfigError(
            "baseline suppression entries need 'machine' and 'rule' keys"
        ) from None
    location = entry.get("location") or {}
    diag = Diagnostic(
        rule=str(rule),
        severity="info",
        message="",
        location=Location(
            operation=location.get("operation"),
            resource=location.get("resource"),
            cycle=location.get("cycle"),
            file=location.get("file"),
            symbol=location.get("symbol"),
        ),
    )
    return (str(machine), diag.suppression_key())


@dataclass
class Baseline:
    """A set of suppressed findings, keyed by machine and location."""

    entries: List[Dict[str, object]] = field(default_factory=list)
    _keys: Set[_Key] = field(default_factory=set, repr=False)

    def __post_init__(self):
        self._keys = {_entry_key(entry) for entry in self.entries}

    def __len__(self) -> int:
        return len(self._keys)

    def matches(self, machine: str, diagnostic: Diagnostic) -> bool:
        """True when the finding is recorded in this baseline."""
        return (machine, diagnostic.suppression_key()) in self._keys

    def add_report(self, report: LintReport) -> int:
        """Record every finding of a report; returns how many were new."""
        added = 0
        for diag in report.diagnostics:
            entry = {
                "machine": report.machine,
                "rule": diag.rule,
                "location": {
                    key: value
                    for key, value in diag.location.to_dict().items()
                    if key != "line"
                },
            }
            key = _entry_key(entry)
            if key not in self._keys:
                self._keys.add(key)
                self.entries.append(entry)
                added += 1
        return added

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Baseline":
        if not isinstance(data, dict):
            raise LintConfigError("baseline file must hold a JSON object")
        version = data.get("version")
        if version != BASELINE_SCHEMA_VERSION:
            raise LintConfigError(
                "unsupported baseline version %r (expected %d)"
                % (version, BASELINE_SCHEMA_VERSION)
            )
        suppressions = data.get("suppressions", [])
        if not isinstance(suppressions, list):
            raise LintConfigError("'suppressions' must be a list")
        return cls(entries=list(suppressions))

    def to_dict(self) -> Dict[str, object]:
        ordered = sorted(
            self.entries,
            key=lambda entry: (
                str(entry.get("machine", "")),
                str(entry.get("rule", "")),
                json.dumps(entry.get("location", {}), sort_keys=True),
            ),
        )
        return {
            "version": BASELINE_SCHEMA_VERSION,
            "suppressions": ordered,
        }

    @classmethod
    def load(cls, path: str) -> "Baseline":
        """Read a baseline file; a clear error on malformed content."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except OSError as exc:
            raise LintConfigError(
                "cannot read baseline %r: %s" % (path, exc)
            ) from exc
        except ValueError as exc:
            raise LintConfigError(
                "baseline %r is not valid JSON: %s" % (path, exc)
            ) from exc
        return cls.from_dict(data)

    def save(self, path: str) -> None:
        try:
            atomic_write_text(
                path,
                json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n",
            )
        except OSError as exc:
            raise LintConfigError(
                "cannot write baseline %r: %s" % (path, exc)
            ) from exc


def write_baseline(
    path: str, reports: Iterable[LintReport], merge: bool = True
) -> Baseline:
    """Write (or extend) a baseline file covering the given reports."""
    baseline = Baseline()
    if merge and os.path.exists(path):
        baseline = Baseline.load(path)
    for report in reports:
        baseline.add_report(report)
    baseline.save(path)
    return baseline
