"""Contention-recognizing finite-state automata (related-work baseline).

Builds the automaton of Proebsting & Fraser: a state is the set of
*pending resource reservations* — ``(resource, future_cycle)`` pairs
dangling from already-issued operations, relative to the current cycle.
Issuing an operation is legal when its usages do not intersect the state;
advancing a cycle shifts every pending pair one cycle closer and drops the
expired ones.  The automaton accepts exactly the contention-free schedules
of the machine, one table lookup per event.

A *reverse* automaton (Bala & Rubin) is the same construction over the
time-reversed reservation tables; together the pair supports checking
insertions into the middle of a schedule.

State counts grow with pipeline depth — the 34-cycle MIPS divide alone
contributes a long chain — which is the size problem the paper's reduced
reservation tables avoid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.core.machine import MachineDescription
from repro.errors import ReproError

#: The cycle-advance input symbol.
ADVANCE = "<advance>"

State = FrozenSet[Tuple[str, int]]
EMPTY_STATE: State = frozenset()


class AutomatonTooLarge(ReproError):
    """Raised when construction exceeds the state budget."""


@dataclass
class PipelineAutomaton:
    """An explicit contention-recognizing automaton.

    Attributes
    ----------
    machine:
        The machine the automaton recognizes schedules of.
    states:
        State-set to dense-id mapping; id 0 is the empty (start) state.
    transitions:
        ``(state_id, symbol) -> state_id`` where symbol is an operation
        name or :data:`ADVANCE`.  Missing operation entries mean the
        operation cannot issue in that state (a structural hazard).
    reverse:
        True when built over time-reversed tables.
    """

    machine: MachineDescription
    states: Dict[State, int]
    transitions: Dict[Tuple[int, str], int]
    reverse: bool = False

    @property
    def num_states(self) -> int:
        return len(self.states)

    @property
    def num_transitions(self) -> int:
        return len(self.transitions)

    def start(self) -> int:
        """Id of the empty start state."""
        return 0

    def issue(self, state_id: int, op: str) -> Optional[int]:
        """State after issuing ``op`` in the current cycle, or None."""
        if op not in self.machine:
            raise ReproError("unknown operation %r" % op)
        return self.transitions.get((state_id, op))

    def can_issue(self, state_id: int, op: str) -> bool:
        return (state_id, op) in self.transitions

    def advance(self, state_id: int) -> int:
        """State after one cycle boundary (always defined)."""
        return self.transitions[(state_id, ADVANCE)]

    def memory_bytes(self, bytes_per_entry: int = 4) -> int:
        """Rough table storage: one entry per (state, symbol)."""
        symbols = self.machine.num_operations + 1
        return self.num_states * symbols * bytes_per_entry

    @classmethod
    def build(
        cls,
        machine: MachineDescription,
        reverse: bool = False,
        max_states: int = 500_000,
    ) -> "PipelineAutomaton":
        """Explicit-state construction by breadth-first exploration."""
        usages: Dict[str, Tuple[Tuple[str, int], ...]] = {}
        for op, table in machine.items():
            if reverse:
                table = table.reversed()
            usages[op] = tuple(
                (resource, cycle) for resource, cycle in table.iter_usages()
            )

        states: Dict[State, int] = {EMPTY_STATE: 0}
        transitions: Dict[Tuple[int, str], int] = {}
        worklist: List[State] = [EMPTY_STATE]

        def intern(state: State) -> int:
            existing = states.get(state)
            if existing is not None:
                return existing
            if len(states) >= max_states:
                raise AutomatonTooLarge(
                    "automaton for %r exceeds %d states"
                    % (machine.name, max_states)
                )
            ident = len(states)
            states[state] = ident
            worklist.append(state)
            return ident

        while worklist:
            state = worklist.pop()
            state_id = states[state]
            occupied = state
            # Operation transitions: legal iff no usage is already pending.
            for op, pairs in usages.items():
                if any(pair in occupied for pair in pairs):
                    continue
                successor = frozenset(occupied | set(pairs))
                transitions[(state_id, op)] = intern(successor)
            # Cycle advance: shift pending reservations one cycle closer.
            advanced = frozenset(
                (resource, cycle - 1)
                for resource, cycle in occupied
                if cycle >= 1
            )
            transitions[(state_id, ADVANCE)] = intern(advanced)

        return cls(
            machine=machine,
            states=states,
            transitions=transitions,
            reverse=reverse,
        )
