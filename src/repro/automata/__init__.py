"""Finite-state-automata baselines (related work, paper Section 2).

* :class:`PipelineAutomaton` — monolithic contention-recognizing automaton
  (Proebsting & Fraser); exact, one lookup per event, but state counts
  grow quickly with pipeline depth.
* :class:`FactoredAutomata` — per-resource-group factoring (Müller): far
  smaller, at one lookup per factor per event.
* :class:`AutomatonQueryModule` — a Bala & Rubin style query module with
  per-cycle state arrays, supporting unrestricted placement by
  re-propagating states through later cycles (charged as work).
"""

from repro.automata.core import (
    ADVANCE,
    AutomatonTooLarge,
    PipelineAutomaton,
)
from repro.automata.factored import (
    PER_RESOURCE,
    UNIT,
    FactoredAutomata,
    factor_resources,
)
from repro.automata.minimize import is_minimal, minimize
from repro.automata.pair import PairedAutomatonQueryModule
from repro.automata.query import AutomatonQueryModule

__all__ = [
    "ADVANCE",
    "AutomatonQueryModule",
    "AutomatonTooLarge",
    "FactoredAutomata",
    "PER_RESOURCE",
    "PairedAutomatonQueryModule",
    "PipelineAutomaton",
    "UNIT",
    "factor_resources",
    "is_minimal",
    "minimize",
]
