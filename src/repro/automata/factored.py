"""Factored automata (Müller): one automaton per resource group.

A contention exists iff it exists within at least one resource, so the
machine may be partitioned into resource groups and one automaton built
per group from the reservation tables *restricted* to that group.  A query
then needs one lookup per factor instead of one overall — trading lookups
for an exponential reduction in state count, exactly the trade-off the
paper describes in Section 2.

The default grouping uses the unit prefix of our resource naming
convention (``iu.ex`` -> group ``iu``); per-resource factoring is the
finest legal partition and never explodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.automata.core import PipelineAutomaton
from repro.core.machine import MachineDescription
from repro.errors import ReproError

UNIT = "unit"
PER_RESOURCE = "resource"


def factor_resources(
    machine: MachineDescription, mode: str = UNIT
) -> List[Tuple[str, ...]]:
    """Partition a machine's resources into factor groups.

    ``unit`` groups by the prefix before the first ``.`` in the resource
    name; ``resource`` puts every resource in its own group.
    """
    if mode == PER_RESOURCE:
        return [(resource,) for resource in machine.resources]
    if mode == UNIT:
        groups: Dict[str, List[str]] = {}
        for resource in machine.resources:
            prefix = resource.split(".", 1)[0]
            groups.setdefault(prefix, []).append(resource)
        return [tuple(groups[prefix]) for prefix in sorted(groups)]
    raise ReproError("unknown factoring mode %r" % mode)


@dataclass
class FactoredAutomata:
    """A set of per-group automata jointly recognizing the machine."""

    machine: MachineDescription
    groups: List[Tuple[str, ...]]
    factors: List[PipelineAutomaton]
    reverse: bool = False

    @property
    def num_states(self) -> int:
        """Total states across all factors."""
        return sum(factor.num_states for factor in self.factors)

    @property
    def max_factor_states(self) -> int:
        return max(factor.num_states for factor in self.factors)

    @property
    def num_factors(self) -> int:
        return len(self.factors)

    def start(self) -> Tuple[int, ...]:
        return tuple(0 for _ in self.factors)

    def can_issue(self, state: Sequence[int], op: str) -> bool:
        """True when every factor permits ``op`` (one lookup per factor)."""
        return all(
            factor.can_issue(component, op)
            for factor, component in zip(self.factors, state)
        )

    def issue(self, state: Sequence[int], op: str) -> Optional[Tuple[int, ...]]:
        successors = []
        for factor, component in zip(self.factors, state):
            nxt = factor.issue(component, op)
            if nxt is None:
                return None
            successors.append(nxt)
        return tuple(successors)

    def advance(self, state: Sequence[int]) -> Tuple[int, ...]:
        return tuple(
            factor.advance(component)
            for factor, component in zip(self.factors, state)
        )

    def memory_bytes(self, bytes_per_entry: int = 4) -> int:
        return sum(f.memory_bytes(bytes_per_entry) for f in self.factors)

    @classmethod
    def build(
        cls,
        machine: MachineDescription,
        mode: str = UNIT,
        reverse: bool = False,
        max_states: int = 500_000,
    ) -> "FactoredAutomata":
        groups = factor_resources(machine, mode)
        factors = []
        for group in groups:
            restricted_ops = {
                op: table.restricted(group) for op, table in machine.items()
            }
            sub_machine = MachineDescription(
                "%s[%s]" % (machine.name, group[0]),
                restricted_ops,
                resources=group,
            )
            factors.append(
                PipelineAutomaton.build(
                    sub_machine, reverse=reverse, max_states=max_states
                )
            )
        return cls(
            machine=machine, groups=groups, factors=factors, reverse=reverse
        )
