"""DFA minimization for pipeline automata (Moore partition refinement).

Proebsting & Fraser claim their construction "directly results in minimal
finite-state automata"; Bala & Rubin's boundary-condition evidence also
hinges on minimality.  This module checks the claim rather than assuming
it: :func:`minimize` merges indistinguishable states by classic partition
refinement and reports the minimized machine, and
:func:`is_minimal` is the one-line check used by tests.

For these automata every state is accepting; two states are equivalent
iff they enable the same operations and, symbol by symbol (operations
plus cycle advance), their successors are equivalent.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.automata.core import ADVANCE, PipelineAutomaton


def _signature(
    automaton: PipelineAutomaton,
    state_id: int,
    block_of: List[int],
    symbols: List[str],
) -> Tuple:
    parts = []
    for symbol in symbols:
        successor = automaton.transitions.get((state_id, symbol))
        parts.append(-1 if successor is None else block_of[successor])
    return tuple(parts)


def minimize(automaton: PipelineAutomaton) -> PipelineAutomaton:
    """Return an equivalent automaton with indistinguishable states merged.

    The start state's block becomes the new state 0; the returned
    automaton reuses the original machine and keeps the merged state
    sets as its ``states`` keys (frozensets of the original pending
    reservations are replaced by the representative's set).
    """
    symbols = list(automaton.machine.operation_names) + [ADVANCE]
    num_states = automaton.num_states
    # Initial partition: states with the same enabled-operation set.
    block_of = [0] * num_states
    blocks: Dict[Tuple, int] = {}
    for state_id in range(num_states):
        enabled = tuple(
            (state_id, symbol) in automaton.transitions
            for symbol in symbols
        )
        block_of[state_id] = blocks.setdefault(enabled, len(blocks))

    while True:
        refined: Dict[Tuple, int] = {}
        new_block_of = [0] * num_states
        for state_id in range(num_states):
            key = (
                block_of[state_id],
                _signature(automaton, state_id, block_of, symbols),
            )
            new_block_of[state_id] = refined.setdefault(key, len(refined))
        if len(refined) == len(set(block_of)):
            block_of = new_block_of
            break
        block_of = new_block_of

    # Renumber so the start state's block is 0.
    order: Dict[int, int] = {block_of[0]: 0}
    for state_id in range(num_states):
        order.setdefault(block_of[state_id], len(order))
    block_of = [order[b] for b in block_of]

    representatives: Dict[int, int] = {}
    for state_id in range(num_states):
        representatives.setdefault(block_of[state_id], state_id)

    id_to_state = {v: k for k, v in automaton.states.items()}
    states = {
        id_to_state[representative]: block
        for block, representative in representatives.items()
    }
    transitions = {}
    for block, representative in representatives.items():
        for symbol in symbols:
            successor = automaton.transitions.get((representative, symbol))
            if successor is not None:
                transitions[(block, symbol)] = block_of[successor]
    return PipelineAutomaton(
        machine=automaton.machine,
        states=states,
        transitions=transitions,
        reverse=automaton.reverse,
    )


def is_minimal(automaton: PipelineAutomaton) -> bool:
    """True when no two states of the automaton are indistinguishable."""
    return minimize(automaton).num_states == automaton.num_states
