"""Automaton-based contention query module (Bala & Rubin baseline).

Keeps a per-cycle array of automaton states for the current partial
schedule.  Appending operations in non-decreasing cycle order costs one
table lookup per event — the automata's strength.  *Inserting* an
operation in the middle of a schedule, however, changes the resource
requirements of every subsequent cycle, so the state array must be
re-propagated (re-issuing the already-scheduled operations) until it
re-converges, and every re-issue is charged as work — the overhead the
paper's Sections 2 and 8 highlight for unrestricted scheduling models.

``assign_free`` (scheduling *into* a conflict and evicting the owners) is
not supported: recognizing which accepted operations to unschedule would
require rewriting the accepted path of both automata, the difficulty noted
at the end of the paper's Section 2.  Schedulers that need eviction must
use the reservation-table modules.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from repro.automata.core import PipelineAutomaton
from repro.automata.factored import FactoredAutomata
from repro.core.machine import MachineDescription
from repro.errors import QueryError
from repro.query.base import ContentionQueryModule, ScheduledToken

Automaton = Union[PipelineAutomaton, FactoredAutomata]


class AutomatonQueryModule(ContentionQueryModule):
    """Query module over a (monolithic or factored) pipeline automaton.

    Parameters
    ----------
    machine:
        Machine description (must match the automaton's machine).
    automaton:
        A pre-built :class:`PipelineAutomaton` or :class:`FactoredAutomata`;
        built on demand (factored, unit groups) when omitted.
    """

    def __init__(
        self,
        machine: MachineDescription,
        automaton: Optional[Automaton] = None,
    ):
        super().__init__(machine)
        if automaton is None:
            automaton = FactoredAutomata.build(machine)
        if automaton.machine != machine:
            raise QueryError("automaton was built for a different machine")
        self.automaton = automaton
        # Operations issued per cycle, in issue order.
        self._by_cycle: Dict[int, List[str]] = {}
        # State *entering* each cycle in [base, top]; cycles outside the
        # range have the empty start state (no pending reservations).
        self._entering: Dict[int, object] = {}
        self._base: Optional[int] = None
        self._top: Optional[int] = None

    # ------------------------------------------------------------------
    # State-array helpers
    # ------------------------------------------------------------------
    def _state_entering(self, cycle: int) -> object:
        if self._base is None or cycle <= self._base:
            return self.automaton.start()
        cached = self._entering.get(cycle)
        if cached is not None:
            return cached
        return self.automaton.start()

    def _influence_length(self, op: str) -> int:
        return max(1, self.machine.table(op).length)

    def _simulate(
        self, op: str, cycle: int
    ) -> Tuple[bool, int, Dict[int, object]]:
        """Insert ``op`` at ``cycle`` over the cached states.

        Returns ``(fits, work_units, updated_states)`` where
        ``updated_states`` maps cycles to their new entering states (only
        for cycles whose state changed).  Work counts one unit per
        automaton event (issue attempt or cycle advance).
        """
        units = 0
        state = self._state_entering(cycle)
        # Re-issue the operations already scheduled in this cycle.
        for resident in self._by_cycle.get(cycle, ()):
            units += 1
            state = self.automaton.issue(state, resident)
            if state is None:  # pragma: no cover - cache is consistent
                raise QueryError("inconsistent automaton state cache")
        units += 1
        state = self.automaton.issue(state, op)
        if state is None:
            return False, units, {}
        # Propagate forward until the new states re-converge with the
        # cached ones past the insertion's influence.
        updates: Dict[int, object] = {}
        top = self._top if self._top is not None else cycle
        influence_end = cycle + self._influence_length(op)
        current = cycle
        while True:
            units += 1
            state = self.automaton.advance(state)
            current += 1
            if current > max(top, influence_end):
                break
            if state == self._state_entering(current) and current >= influence_end:
                break
            updates[current] = state
            for resident in self._by_cycle.get(current, ()):
                units += 1
                next_state = self.automaton.issue(state, resident)
                if next_state is None:
                    return False, units, {}
                state = next_state
        return True, units, updates

    def _rebuild_from(self, cycle: int) -> None:
        """Recompute the state array from ``cycle`` to the new top."""
        occupied = sorted(self._by_cycle)
        if not occupied:
            self._entering.clear()
            self._base = None
            self._top = None
            return
        self._base = occupied[0]
        self._top = max(
            t + self._influence_length(op)
            for t, ops in self._by_cycle.items()
            for op in ops
        )
        start = min(cycle, self._base)
        state = self._state_entering(start)
        for c in range(start, self._top + 1):
            if c > start:
                state = self.automaton.advance(state)
            self._entering[c] = state
            for resident in self._by_cycle.get(c, ()):
                next_state = self.automaton.issue(state, resident)
                if next_state is None:  # pragma: no cover
                    raise QueryError("inconsistent automaton state cache")
                state = next_state
        for c in list(self._entering):
            if c > self._top:
                del self._entering[c]

    # ------------------------------------------------------------------
    # Representation hooks
    # ------------------------------------------------------------------
    def _check(self, op: str, cycle: int) -> Tuple[bool, int]:
        fits, units, _updates = self._simulate(op, cycle)
        return fits, units

    def _assign(self, token: ScheduledToken, with_owners: bool) -> int:
        fits, units, _updates = self._simulate(token.op, token.cycle)
        if not fits:
            raise QueryError(
                "assigning %r at %d over a structural hazard"
                % (token.op, token.cycle)
            )
        self._by_cycle.setdefault(token.cycle, []).append(token.op)
        self._rebuild_from(token.cycle)
        return units

    def _free(self, token: ScheduledToken, with_owners: bool) -> int:
        residents = self._by_cycle.get(token.cycle, [])
        if token.op not in residents:
            raise QueryError("token %r not in automaton schedule" % (token,))
        residents.remove(token.op)
        if not residents:
            del self._by_cycle[token.cycle]
        span = self._top - token.cycle + 1 if self._top is not None else 1
        self._rebuild_from(token.cycle)
        return max(1, span)

    def _assign_free(self, token: ScheduledToken):
        raise QueryError(
            "automaton query modules do not support assign&free; "
            "modifying the accepted path to evict operations is the "
            "difficulty noted in the paper's Section 2"
        )

    def _reset_state(self) -> None:
        self._by_cycle.clear()
        self._entering.clear()
        self._base = None
        self._top = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def stored_state_cycles(self) -> int:
        """Cycles of cached automaton state (the per-cycle memory cost)."""
        return len(self._entering)
