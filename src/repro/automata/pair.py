"""Forward/reverse automaton pair query module (Bala & Rubin, MICRO-28).

Bala and Rubin extend Proebsting–Fraser automata to unrestricted
scheduling with a *pair* of automata: a forward automaton run over the
schedule in increasing cycle order, and a reverse automaton run over the
time-reversed schedule.  One cached state per scheduled cycle per
automaton allows quick checks:

* appending at the end of the schedule needs one forward lookup;
* prepending at the beginning needs one reverse lookup;
* inserting in the middle first runs the cheap *pair pre-filter* — the
  forward state entering the cycle must accept the operation, and the
  reverse state entering its mirrored position must accept its reversed
  table.  The pre-filter is necessary but not sufficient: an operation
  strictly nested inside a longer operation's reservation span is visible
  to neither automaton, so a passing pre-filter is confirmed by
  re-propagating forward states (the update of "the state of scheduled
  operations in adjacent cycles" the paper describes, charged as work).

The memory cost the paper criticizes is explicit here: two automaton
states are cached per scheduled cycle (:attr:`stored_states`), in
addition to both transition tables.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.automata.core import PipelineAutomaton
from repro.core.machine import MachineDescription
from repro.core.reservation import ReservationTable
from repro.errors import QueryError
from repro.query.base import ContentionQueryModule, ScheduledToken

#: Reverse-time anchor; any value beyond all real schedule cycles works.
_HORIZON = 1 << 20


class _Lane:
    """One automaton plus its per-cycle state cache over a schedule."""

    def __init__(self, automaton: PipelineAutomaton, lengths: Dict[str, int]):
        self.automaton = automaton
        self.lengths = lengths
        self.by_cycle: Dict[int, List[str]] = {}
        self.entering: Dict[int, object] = {}
        self.base: Optional[int] = None
        self.top: Optional[int] = None

    def state_entering(self, cycle: int):
        if self.base is None or cycle <= self.base:
            return self.automaton.start()
        cached = self.entering.get(cycle)
        if cached is not None:
            return cached
        return self.automaton.start()

    def quick_accepts(self, op: str, cycle: int) -> Tuple[bool, int]:
        """One-lookup test against the cached entering state (plus any
        same-cycle residents).  Exact only when nothing is scheduled at a
        later cycle of this lane's time direction."""
        units = 0
        state = self.state_entering(cycle)
        for resident in self.by_cycle.get(cycle, ()):
            units += 1
            state = self.automaton.issue(state, resident)
            if state is None:  # pragma: no cover - cache is consistent
                raise QueryError("inconsistent lane state")
        units += 1
        return self.automaton.can_issue(state, op), units

    def full_check(self, op: str, cycle: int) -> Tuple[bool, int]:
        """Insert-and-propagate validation (sound and complete)."""
        units = 0
        state = self.state_entering(cycle)
        for resident in self.by_cycle.get(cycle, ()):
            units += 1
            state = self.automaton.issue(state, resident)
        units += 1
        state = self.automaton.issue(state, op)
        if state is None:
            return False, units
        top = self.top if self.top is not None else cycle
        influence_end = cycle + max(1, self.lengths[op])
        current = cycle
        while True:
            units += 1
            state = self.automaton.advance(state)
            current += 1
            if current > max(top, influence_end):
                break
            if (
                state == self.state_entering(current)
                and current >= influence_end
            ):
                break
            for resident in self.by_cycle.get(current, ()):
                units += 1
                next_state = self.automaton.issue(state, resident)
                if next_state is None:
                    return False, units
                state = next_state
        return True, units

    def add(self, op: str, cycle: int) -> None:
        self.by_cycle.setdefault(cycle, []).append(op)
        self.rebuild()

    def remove(self, op: str, cycle: int) -> None:
        residents = self.by_cycle.get(cycle, [])
        if op not in residents:
            raise QueryError("%r not scheduled at %d" % (op, cycle))
        residents.remove(op)
        if not residents:
            del self.by_cycle[cycle]
        self.rebuild()

    def rebuild(self) -> None:
        self.entering.clear()
        if not self.by_cycle:
            self.base = None
            self.top = None
            return
        self.base = min(self.by_cycle)
        self.top = max(
            cycle + max(1, self.lengths[op])
            for cycle, ops in self.by_cycle.items()
            for op in ops
        )
        state = self.automaton.start()
        for cycle in range(self.base, self.top + 1):
            if cycle > self.base:
                state = self.automaton.advance(state)
            self.entering[cycle] = state
            for resident in self.by_cycle.get(cycle, ()):
                next_state = self.automaton.issue(state, resident)
                if next_state is None:  # pragma: no cover
                    raise QueryError("inconsistent lane rebuild")
                state = next_state


def _reversed_machine(machine: MachineDescription) -> MachineDescription:
    """Per-operation time reversal (each table mirrored on its own span)."""
    operations = {}
    for op, table in machine.items():
        operations[op] = table.reversed() if not table.is_empty else (
            ReservationTable({})
        )
    return MachineDescription(
        machine.name + "-reversed",
        operations,
        resources=machine.resources,
        alternatives=machine.alternatives,
    )


class PairedAutomatonQueryModule(ContentionQueryModule):
    """Bala & Rubin style query module over a forward/reverse pair.

    Parameters
    ----------
    machine:
        Machine description.
    forward / backward:
        Optional pre-built automata (forward over the machine, backward
        over its per-operation time reversal); built on demand otherwise.
    """

    def __init__(
        self,
        machine: MachineDescription,
        forward: Optional[PipelineAutomaton] = None,
        backward: Optional[PipelineAutomaton] = None,
        max_states: int = 500_000,
    ):
        super().__init__(machine)
        lengths = {
            op: machine.table(op).length for op in machine.operation_names
        }
        if forward is None:
            forward = PipelineAutomaton.build(machine, max_states=max_states)
        reversed_machine = _reversed_machine(machine)
        if backward is None:
            backward = PipelineAutomaton.build(
                reversed_machine, max_states=max_states
            )
        self._forward = _Lane(forward, lengths)
        self._backward = _Lane(backward, lengths)
        self._lengths = lengths
        #: Pre-filter statistics: how often the cheap pair test decided.
        self.prefilter_rejects = 0
        self.full_confirmations = 0

    # ------------------------------------------------------------------
    def _reverse_cycle(self, op: str, cycle: int) -> int:
        """Reverse-time issue position of ``op`` at real ``cycle``."""
        return _HORIZON - cycle - (max(1, self._lengths[op]) - 1)

    def _check(self, op: str, cycle: int) -> Tuple[bool, int]:
        # Pair pre-filter: one lookup in each automaton.
        fwd_ok, fwd_units = self._forward.quick_accepts(op, cycle)
        if not fwd_ok:
            self.prefilter_rejects += 1
            return False, fwd_units
        bwd_ok, bwd_units = self._backward.quick_accepts(
            op, self._reverse_cycle(op, cycle)
        )
        units = fwd_units + bwd_units
        if not bwd_ok:
            self.prefilter_rejects += 1
            return False, units
        # Confirm: operations strictly nested inside this op's span (or
        # vice versa) escape both quick tests; propagate forward states.
        self.full_confirmations += 1
        ok, more = self._forward.full_check(op, cycle)
        return ok, units + more

    def _assign(self, token: ScheduledToken, with_owners: bool) -> int:
        ok, units = self._check(token.op, token.cycle)
        if not ok:
            raise QueryError(
                "assigning %r at %d over a structural hazard"
                % (token.op, token.cycle)
            )
        self._forward.add(token.op, token.cycle)
        self._backward.add(
            token.op, self._reverse_cycle(token.op, token.cycle)
        )
        return units

    def _free(self, token: ScheduledToken, with_owners: bool) -> int:
        span = 1
        if self._forward.top is not None:
            span = max(1, self._forward.top - token.cycle + 1)
        self._forward.remove(token.op, token.cycle)
        self._backward.remove(
            token.op, self._reverse_cycle(token.op, token.cycle)
        )
        return span

    def _assign_free(self, token: ScheduledToken):
        raise QueryError(
            "automaton pairs do not support assign&free (paper Section 2)"
        )

    def _reset_state(self) -> None:
        for lane in (self._forward, self._backward):
            lane.by_cycle.clear()
            lane.entering.clear()
            lane.base = None
            lane.top = None
        self.prefilter_rejects = 0
        self.full_confirmations = 0

    # ------------------------------------------------------------------
    @property
    def stored_states(self) -> int:
        """Cached automaton states — two per cycle of schedule span, the
        memory overhead the paper attributes to this approach."""
        return len(self._forward.entering) + len(self._backward.entering)

    def automata_memory_bytes(self, bytes_per_entry: int = 4) -> int:
        return self._forward.automaton.memory_bytes(
            bytes_per_entry
        ) + self._backward.automaton.memory_bytes(bytes_per_entry)
