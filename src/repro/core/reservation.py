"""Reservation tables and usage sets.

A *reservation table* describes the resource requirements of one operation:
its rows are machine resources and its columns are cycles relative to the
operation's issue time.  An entry at (resource ``r``, cycle ``c``) means the
operation reserves ``r`` for exclusive use during its ``c``-th cycle.

Following the paper (Section 3), the table is stored as *usage sets*: for
each resource, the set of cycles in which the operation uses it.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Tuple

from repro.errors import MachineDescriptionError


class ReservationTable:
    """Immutable per-operation reservation table.

    Parameters
    ----------
    usages:
        Mapping from resource name to an iterable of cycle indices.
        Cycles must be non-negative integers.  Resources mapped to an
        empty cycle set are dropped.

    Examples
    --------
    >>> rt = ReservationTable({"alu": [0], "bus": [0, 3]})
    >>> rt.usage_count
    3
    >>> sorted(rt.usage_set("bus"))
    [0, 3]
    """

    __slots__ = ("_usages", "_hash")

    def __init__(self, usages: Mapping[str, Iterable[int]]):
        table: Dict[str, frozenset] = {}
        for resource, cycles in usages.items():
            cycle_set = frozenset(cycles)
            if not cycle_set:
                continue
            for cycle in cycle_set:
                if not isinstance(cycle, int) or isinstance(cycle, bool):
                    raise MachineDescriptionError(
                        "cycle %r of resource %r is not an int" % (cycle, resource)
                    )
                if cycle < 0:
                    raise MachineDescriptionError(
                        "cycle %d of resource %r is negative" % (cycle, resource)
                    )
            table[str(resource)] = cycle_set
        self._usages = table
        self._hash = None

    @classmethod
    def from_pairs(cls, pairs: Iterable[Tuple[str, int]]) -> "ReservationTable":
        """Build a table from an iterable of ``(resource, cycle)`` pairs."""
        accum: Dict[str, set] = {}
        for resource, cycle in pairs:
            accum.setdefault(resource, set()).add(cycle)
        return cls(accum)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def resources(self) -> Tuple[str, ...]:
        """Resources used by this operation, in sorted order."""
        return tuple(sorted(self._usages))

    @property
    def usage_count(self) -> int:
        """Total number of (resource, cycle) usages in the table."""
        return sum(len(cycles) for cycles in self._usages.values())

    @property
    def length(self) -> int:
        """Number of columns: one past the latest cycle used (0 if empty)."""
        if not self._usages:
            return 0
        return 1 + max(max(cycles) for cycles in self._usages.values())

    @property
    def is_empty(self) -> bool:
        """True when the operation uses no resources at all."""
        return not self._usages

    def usage_set(self, resource: str) -> frozenset:
        """Set of cycles in which ``resource`` is used (empty if unused)."""
        return self._usages.get(resource, frozenset())

    def uses(self, resource: str, cycle: int) -> bool:
        """True when ``resource`` is reserved at ``cycle``."""
        return cycle in self._usages.get(resource, frozenset())

    def iter_usages(self) -> Iterator[Tuple[str, int]]:
        """Yield every ``(resource, cycle)`` usage in deterministic order."""
        for resource in sorted(self._usages):
            for cycle in sorted(self._usages[resource]):
                yield resource, cycle

    def cycles_used(self) -> frozenset:
        """Set of cycles in which at least one resource is used."""
        result = set()
        for cycles in self._usages.values():
            result.update(cycles)
        return frozenset(result)

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def shifted(self, offset: int) -> "ReservationTable":
        """Return a copy with every usage moved ``offset`` cycles later."""
        return ReservationTable(
            {r: [c + offset for c in cycles] for r, cycles in self._usages.items()}
        )

    def reversed(self) -> "ReservationTable":
        """Time-reverse the table (used to build reverse automata).

        The usage at cycle ``c`` moves to cycle ``length - 1 - c``.
        """
        last = self.length - 1
        return ReservationTable(
            {r: [last - c for c in cycles] for r, cycles in self._usages.items()}
        )

    def merged(self, other: "ReservationTable") -> "ReservationTable":
        """Union of two tables (used when composing usage patterns)."""
        accum = {r: set(cycles) for r, cycles in self._usages.items()}
        for resource, cycles in other._usages.items():
            accum.setdefault(resource, set()).update(cycles)
        return ReservationTable(accum)

    def restricted(self, resources: Iterable[str]) -> "ReservationTable":
        """Keep only usages of the given resources."""
        wanted = set(resources)
        return ReservationTable(
            {r: cycles for r, cycles in self._usages.items() if r in wanted}
        )

    def conflicts_at(self, other: "ReservationTable", distance: int) -> bool:
        """True when ``other`` issued ``distance`` cycles after ``self``
        collides with ``self`` on some shared resource.

        ``distance`` may be negative (``other`` issues earlier).
        """
        for resource, cycles in self._usages.items():
            other_cycles = other._usages.get(resource)
            if not other_cycles:
                continue
            for c in cycles:
                if (c - distance) in other_cycles:
                    return True
        return False

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------
    def __eq__(self, other) -> bool:
        if not isinstance(other, ReservationTable):
            return NotImplemented
        return self._usages == other._usages

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self._usages.items()))
        return self._hash

    def __repr__(self) -> str:
        body = ", ".join(
            "%s: %s" % (r, sorted(self._usages[r])) for r in sorted(self._usages)
        )
        return "ReservationTable({%s})" % body

    def render(self, resources: Iterable[str] = None, mark: str = "X") -> str:
        """ASCII-render the table, one row per resource.

        Parameters
        ----------
        resources:
            Row order; defaults to the table's own (sorted) resources.
        mark:
            Character used for a reserved entry.
        """
        rows = list(resources) if resources is not None else list(self.resources)
        width = self.length
        name_width = max((len(r) for r in rows), default=0)
        lines = []
        header = " " * name_width + " |" + "".join(
            str(c % 10) for c in range(width)
        )
        lines.append(header)
        for resource in rows:
            cells = "".join(
                mark if self.uses(resource, c) else "." for c in range(width)
            )
            lines.append(resource.ljust(name_width) + " |" + cells)
        return "\n".join(lines)
