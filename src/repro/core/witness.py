"""Witness schedules for non-equivalent machine descriptions.

When two descriptions disagree, an abstract "latency 7 differs on pair
(load, div)" is hard to act on.  A *witness* is a concrete two-operation
placement that one description accepts and the other rejects — exactly
the schedule a miscompiled program would contain.  `EquivalenceError`
diagnostics and the `repro diff` command become actionable with one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.forbidden import ForbiddenLatencyMatrix
from repro.core.machine import MachineDescription
from repro.core.verify import schedule_is_contention_free


@dataclass(frozen=True)
class Witness:
    """A concrete placement distinguishing two machine descriptions.

    ``placements`` is legal on ``legal_on`` and causes a resource
    contention on ``conflicts_on``.
    """

    placements: List
    legal_on: str
    conflicts_on: str
    op_x: str
    op_y: str
    latency: int

    def describe(self) -> str:
        parts = ", ".join(
            "%s@%d" % (op, cycle) for op, cycle in self.placements
        )
        return (
            "schedule {%s} is contention-free on %r but collides on %r "
            "(%s issuing %d cycles after %s)"
            % (
                parts,
                self.legal_on,
                self.conflicts_on,
                self.op_x,
                self.latency,
                self.op_y,
            )
        )


def find_witness(
    first: MachineDescription, second: MachineDescription
) -> Optional[Witness]:
    """A two-operation witness of non-equivalence, or ``None`` if the
    descriptions are equivalent.

    Searches the forbidden-latency differences; the first differing
    (pair, latency) yields the placement ``{Y@0, X@f}``, which collides
    exactly on the side that forbids ``f``.
    """
    matrix_a = ForbiddenLatencyMatrix.from_machine(first)
    matrix_b = ForbiddenLatencyMatrix.from_machine(second)
    for op_x, op_y, only_a, only_b in matrix_a.differences(matrix_b):
        if op_x not in second or op_y not in second:
            continue
        for latency, conflicts_on, legal_on in sorted(
            [(f, first, second) for f in only_a]
            + [(f, second, first) for f in only_b],
            key=lambda item: (abs(item[0]), item[0]),
        ):
            placements = [(op_y, 0), (op_x, latency)]
            if min(cycle for _op, cycle in placements) < 0:
                shift = -min(cycle for _op, cycle in placements)
                placements = [
                    (op, cycle + shift) for op, cycle in placements
                ]
            if schedule_is_contention_free(
                legal_on, placements
            ) and not schedule_is_contention_free(conflicts_on, placements):
                return Witness(
                    placements=placements,
                    legal_on=legal_on.name,
                    conflicts_on=conflicts_on.name,
                    op_x=op_x,
                    op_y=op_y,
                    latency=latency,
                )
    return None
