"""Core reduction machinery: reservation tables to reduced machines.

The public surface of this subpackage mirrors the paper's three steps:

1. :class:`ForbiddenLatencyMatrix` — Step 1, forbidden latency extraction;
2. :func:`build_generating_set` — Step 2, Algorithm 1 (maximal resources);
3. :func:`select_resources` / :func:`reduce_machine` — Step 3, selection.
"""

from repro.core.certificate import (
    CERTIFICATE_SCHEMA_NAME,
    CERTIFICATE_SCHEMA_VERSION,
    Certificate,
    CertificateCheck,
    certificate_from_machines,
    check_certificate,
    equivalence_work_units,
    issue_certificate,
    machine_digest,
    matrix_digest_value,
    matrix_work_units,
)
from repro.core.exact_cover import SearchExhausted, exact_minimum_cover
from repro.core.elementary import (
    Resource,
    Usage,
    elementary_pair,
    elementary_pairs,
    generated_instances,
    is_maximal,
    normalize_resource,
    resource_is_valid,
    usages_compatible,
)
from repro.core.forbidden import (
    ForbiddenLatencyMatrix,
    canonical_instance,
    collapse_to_classes,
)
from repro.core.generating import TraceStep, build_generating_set
from repro.core.machine import MachineBuilder, MachineDescription
from repro.core.pruning import prune_covered_resources
from repro.core.reduce import (
    RES_USES,
    WORD_USES,
    Reduction,
    machine_from_selection,
    reduce_for_word_size,
    reduce_machine,
)
from repro.core.reservation import ReservationTable
from repro.core.selection import SelectionResult, select_resources
from repro.core.witness import Witness, find_witness
from repro.core.verify import (
    assert_equivalent,
    differences,
    matrices_equal,
    schedule_is_contention_free,
)

__all__ = [
    "CERTIFICATE_SCHEMA_NAME",
    "CERTIFICATE_SCHEMA_VERSION",
    "Certificate",
    "CertificateCheck",
    "ForbiddenLatencyMatrix",
    "MachineBuilder",
    "MachineDescription",
    "RES_USES",
    "Reduction",
    "ReservationTable",
    "Resource",
    "SearchExhausted",
    "SelectionResult",
    "TraceStep",
    "Usage",
    "Witness",
    "WORD_USES",
    "assert_equivalent",
    "build_generating_set",
    "canonical_instance",
    "certificate_from_machines",
    "check_certificate",
    "collapse_to_classes",
    "differences",
    "equivalence_work_units",
    "issue_certificate",
    "machine_digest",
    "matrix_digest_value",
    "matrix_work_units",
    "exact_minimum_cover",
    "elementary_pair",
    "find_witness",
    "elementary_pairs",
    "generated_instances",
    "is_maximal",
    "machine_from_selection",
    "matrices_equal",
    "normalize_resource",
    "prune_covered_resources",
    "reduce_for_word_size",
    "reduce_machine",
    "resource_is_valid",
    "schedule_is_contention_free",
    "select_resources",
    "usages_compatible",
]
