"""End-to-end machine-description reduction (paper Steps 1–3).

:func:`reduce_machine` chains the three steps — forbidden latency matrix,
generating set of maximal resources, usage selection — and re-verifies the
result against the original description, so a returned
:class:`Reduction` is *guaranteed* exact (Theorem 1 enforced at runtime).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.elementary import Resource
from repro.core.forbidden import ForbiddenLatencyMatrix
from repro.obs import trace as obs
from repro.core.generating import build_generating_set
from repro.core.machine import MachineDescription
from repro.core.pruning import prune_covered_resources
from repro.core.selection import (
    RES_USES,
    WORD_USES,
    SelectionResult,
    select_resources,
)
from repro.errors import EquivalenceError, ReductionError


def machine_from_selection(
    original: MachineDescription,
    selection: SelectionResult,
    name: Optional[str] = None,
) -> MachineDescription:
    """Materialize selected usages as a reduced machine description.

    Synthesized resources are named ``q0, q1, ...`` in selection order.
    Operations of the original machine that use no resources keep empty
    reservation tables; alternative groups are preserved verbatim.
    """
    per_op: Dict[str, Dict[str, List[int]]] = {
        op: {} for op in original.operation_names
    }
    row_names = []
    for row, usages in enumerate(selection.resources):
        row_name = "q%d" % row
        row_names.append(row_name)
        for op, cycle in sorted(usages):
            per_op[op].setdefault(row_name, []).append(cycle)
    operations = {op: rows for op, rows in per_op.items()}
    return MachineDescription(
        name or (original.name + "-reduced"),
        operations,
        resources=row_names,
        alternatives=original.alternatives,
        latencies=original.latencies,
    )


@dataclass
class Reduction:
    """A verified reduction of one machine description.

    Attributes
    ----------
    original / reduced:
        The input machine and its reduced equivalent.
    matrix:
        Forbidden latency matrix both descriptions induce.
    generating_set / pruned_set:
        Algorithm 1 output and its covered-resource pruning.
    selection:
        The usage selection the reduced machine was built from.
    """

    original: MachineDescription
    reduced: MachineDescription
    matrix: ForbiddenLatencyMatrix
    generating_set: List[Resource]
    pruned_set: List[Resource]
    selection: SelectionResult

    @property
    def objective(self) -> str:
        return self.selection.objective

    @property
    def word_cycles(self) -> int:
        return self.selection.word_cycles

    @property
    def resource_ratio(self) -> float:
        """Reduced resource count over original resource count."""
        return self.reduced.num_resources / max(1, self.original.num_resources)

    @property
    def usage_ratio(self) -> float:
        """Reduced usage count over original usage count."""
        return self.reduced.total_usages / max(1, self.original.total_usages)

    def summary(self) -> str:
        """One-line human-readable description of the reduction."""
        return (
            "%s: %d -> %d resources, %d -> %d usages (%s, k=%d)"
            % (
                self.original.name,
                self.original.num_resources,
                self.reduced.num_resources,
                self.original.total_usages,
                self.reduced.total_usages,
                self.objective,
                self.word_cycles,
            )
        )


def reduce_machine(
    machine: MachineDescription,
    objective: str = RES_USES,
    word_cycles: int = 1,
    prune_subsets_every: Optional[int] = 64,
    verify: bool = True,
    collapse_classes: bool = False,
    budget=None,
) -> Reduction:
    """Reduce a machine description, preserving its scheduling constraints.

    Parameters
    ----------
    machine:
        The target machine description.
    objective:
        ``"res-uses"`` for the discrete representation or ``"word-uses"``
        for a bitvector representation with ``word_cycles`` cycles per word.
    word_cycles:
        Number of cycle-bitvectors packed per memory word (``k``).
    prune_subsets_every:
        Forwarded to :func:`~repro.core.generating.build_generating_set`.
    verify:
        Re-derive the forbidden latency matrix of the reduced machine and
        compare; raises :class:`~repro.errors.EquivalenceError` on mismatch.
        On by default — reductions are meant to be provably exact.
    collapse_classes:
        Run the reduction on one representative per operation class and
        give every class member the representative's reduced table
        (Proebsting & Fraser's class merging).  Exact because members of
        one class have identical forbidden latency rows and columns:
        ``F[X][X] = F[X][Y] = F[Y][X] = F[Y][Y]`` whenever X and Y share a
        class, so identical tables reproduce every entry.  A large
        speedup for machines with many interchangeable operations.
    budget:
        Optional :class:`repro.resilience.Budget` (deadline and/or work-unit
        cap) checked at every phase boundary and inside each phase's main
        loop; :class:`~repro.errors.BudgetExceeded` records which phase ran
        out and its best partial result.  Use
        :func:`repro.resilience.reduce_with_fallback` for a version that
        degrades verifiably instead of raising.
    """
    with obs.span("forbidden_matrix", obs.CAT_REDUCE, machine=machine.name):
        matrix = ForbiddenLatencyMatrix.from_machine(machine, budget=budget)
    if collapse_classes:
        classes = matrix.operation_classes()
        if any(len(members) > 1 for members in classes):
            representative = {}
            for members in classes:
                for op in members:
                    representative[op] = members[0]
            collapsed = machine.with_operations(
                sorted({members[0] for members in classes}),
                machine.name + "-classes",
            )
            inner = reduce_machine(
                collapsed,
                objective=objective,
                word_cycles=word_cycles,
                prune_subsets_every=prune_subsets_every,
                verify=False,
                budget=budget,
            )
            expanded = MachineDescription(
                machine.name + "-reduced",
                {
                    op: inner.reduced.table(representative[op])
                    for op in machine.operation_names
                },
                resources=inner.reduced.resources,
                alternatives=machine.alternatives,
                latencies=machine.latencies,
            )
            if verify:
                expanded_matrix = ForbiddenLatencyMatrix.from_machine(
                    expanded
                )
                mismatches = matrix.differences(expanded_matrix)
                if mismatches:
                    raise EquivalenceError(
                        "class-collapsed reduction of %r is not exact"
                        % machine.name,
                        mismatches,
                    )
            return Reduction(
                original=machine,
                reduced=expanded,
                matrix=matrix,
                generating_set=inner.generating_set,
                pruned_set=inner.pruned_set,
                selection=inner.selection,
            )
    with obs.span("generating_set", obs.CAT_REDUCE, machine=machine.name):
        generating_set = build_generating_set(
            matrix, prune_subsets_every=prune_subsets_every, budget=budget
        )
    with obs.span("prune_covered", obs.CAT_REDUCE):
        pruned = prune_covered_resources(generating_set)
    with obs.span(
        "selection", obs.CAT_REDUCE,
        objective=objective, word_cycles=word_cycles,
    ):
        selection = select_resources(
            matrix, pruned, objective=objective, word_cycles=word_cycles,
            budget=budget,
        )
    reduced = machine_from_selection(machine, selection)
    if verify:
        with obs.span("verify", obs.CAT_REDUCE, machine=machine.name):
            reduced_matrix = ForbiddenLatencyMatrix.from_machine(
                reduced, budget=budget
            )
            mismatches = matrix.differences(reduced_matrix)
        if mismatches:
            raise EquivalenceError(
                "reduction of %r is not exact (%d mismatching pairs)"
                % (machine.name, len(mismatches)),
                mismatches,
            )
    return Reduction(
        original=machine,
        reduced=reduced,
        matrix=matrix,
        generating_set=generating_set,
        pruned_set=pruned,
        selection=selection,
    )


def reduce_for_word_size(
    machine: MachineDescription,
    word_bits: int = 64,
    max_rounds: int = 4,
    **kwargs,
) -> Reduction:
    """Reduce for a target memory word, choosing ``k`` automatically.

    The paper's tables pack as many cycle-bitvectors per word as fit:
    ``k = word_bits // reduced_resources``.  But the resource count is
    itself an *output* of the reduction, so the packing is found by
    fixed point: reduce with ``res-uses`` to estimate the resource
    count, derive k, re-reduce with the ``k-cycle-word`` objective, and
    repeat until k stabilizes (in practice immediately — the paper notes
    the resource count is the same across objectives).

    Extra keyword arguments are forwarded to :func:`reduce_machine`.
    """
    if word_bits < 1:
        raise ReductionError("word_bits must be >= 1")
    reduction = reduce_machine(machine, objective=RES_USES, **kwargs)
    k = max(1, word_bits // max(1, reduction.reduced.num_resources))
    for _round in range(max_rounds):
        reduction = reduce_machine(
            machine, objective=WORD_USES, word_cycles=k, **kwargs
        )
        next_k = max(
            1, word_bits // max(1, reduction.reduced.num_resources)
        )
        if next_k == k:
            break
        k = next_k
    return reduction


__all__ = [
    "RES_USES",
    "WORD_USES",
    "Reduction",
    "machine_from_selection",
    "reduce_for_word_size",
    "reduce_machine",
]
