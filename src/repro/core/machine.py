"""Machine descriptions: named collections of reservation tables.

A :class:`MachineDescription` maps every operation (or operation class) of a
target machine to its :class:`~repro.core.reservation.ReservationTable`.  It
also records *alternative operation* groups: the paper (Section 3) removes
alternative resource usages up front by splitting an operation ``X`` that may
use either of two datapaths into two operations ``X.0`` and ``X.1``, each
with fixed usages; the group mapping lets the contention query module's
``check_with_alternatives`` try each variant in turn.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.reservation import ReservationTable
from repro.errors import MachineDescriptionError

ALTERNATIVE_SEPARATOR = "."


def _as_table(value) -> ReservationTable:
    if isinstance(value, ReservationTable):
        return value
    if isinstance(value, Mapping):
        return ReservationTable(value)
    raise MachineDescriptionError(
        "operation tables must be ReservationTable or mapping, got %r" % (value,)
    )


class MachineDescription:
    """An immutable machine description.

    Parameters
    ----------
    name:
        Human-readable machine name (e.g. ``"cydra5"``).
    operations:
        Mapping from operation name to reservation table (either a
        :class:`ReservationTable` or a ``{resource: cycles}`` mapping).
    resources:
        Optional explicit resource ordering.  Resources referenced by
        operations but absent from this list are an error; resources listed
        but never used are kept (they model physical rows that impose no
        constraint).  When omitted, the sorted set of used resources is used.
    alternatives:
        Optional mapping from a base operation name to the list of
        alternative operation names implementing it.  Every listed name must
        be an operation of this machine.
    latencies:
        Optional result-latency metadata: operation (or alternative-group
        base) name to producer latency in cycles.  Purely informational —
        resource semantics live in the reservation tables — but carried,
        compared, and serialized with the description, as real machine
        description files do.

    Examples
    --------
    >>> md = MachineDescription(
    ...     "toy", {"A": {"alu": [0]}, "B": {"alu": [0], "mul": [0, 1]}}
    ... )
    >>> md.operation_names
    ('A', 'B')
    """

    __slots__ = (
        "name",
        "_operations",
        "_resources",
        "_alternatives",
        "_latencies",
    )

    def __init__(
        self,
        name: str,
        operations: Mapping[str, object],
        resources: Optional[Sequence[str]] = None,
        alternatives: Optional[Mapping[str, Sequence[str]]] = None,
        latencies: Optional[Mapping[str, int]] = None,
    ):
        if not operations:
            raise MachineDescriptionError("a machine needs at least one operation")
        self.name = str(name)
        self._operations: Dict[str, ReservationTable] = {
            str(op): _as_table(table) for op, table in operations.items()
        }

        used = set()
        for table in self._operations.values():
            used.update(table.resources)
        if resources is None:
            self._resources: Tuple[str, ...] = tuple(sorted(used))
        else:
            declared = tuple(str(r) for r in resources)
            if len(set(declared)) != len(declared):
                raise MachineDescriptionError("duplicate resource names")
            missing = used - set(declared)
            if missing:
                raise MachineDescriptionError(
                    "operations use undeclared resources: %s" % sorted(missing)
                )
            self._resources = declared

        alt: Dict[str, Tuple[str, ...]] = {}
        for base, variants in (alternatives or {}).items():
            names = tuple(str(v) for v in variants)
            if not names:
                raise MachineDescriptionError(
                    "alternative group %r is empty" % (base,)
                )
            for v in names:
                if v not in self._operations:
                    raise MachineDescriptionError(
                        "alternative %r of %r is not an operation" % (v, base)
                    )
            alt[str(base)] = names
        self._alternatives = alt

        lat: Dict[str, int] = {}
        for op, value in (latencies or {}).items():
            op = str(op)
            if op not in self._operations and op not in alt:
                raise MachineDescriptionError(
                    "latency given for unknown operation %r" % op
                )
            if not isinstance(value, int) or isinstance(value, bool) or value < 0:
                raise MachineDescriptionError(
                    "latency of %r must be a non-negative int" % op
                )
            lat[op] = value
        self._latencies = lat

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def operation_names(self) -> Tuple[str, ...]:
        """All operation names in sorted order."""
        return tuple(sorted(self._operations))

    @property
    def resources(self) -> Tuple[str, ...]:
        """Resource rows, in declaration (or sorted) order."""
        return self._resources

    @property
    def alternatives(self) -> Dict[str, Tuple[str, ...]]:
        """Copy of the alternative-operation group mapping."""
        return dict(self._alternatives)

    @property
    def latencies(self) -> Dict[str, int]:
        """Copy of the result-latency metadata."""
        return dict(self._latencies)

    def latency_of(self, operation: str, default: Optional[int] = None) -> Optional[int]:
        """Result latency of an operation, resolving alternative groups.

        Exact entries win; a variant like ``mov.1`` falls back to its
        base group's entry; otherwise ``default``.
        """
        if operation in self._latencies:
            return self._latencies[operation]
        for base, variants in self._alternatives.items():
            if operation in variants and base in self._latencies:
                return self._latencies[base]
        if operation not in self._operations and not any(
            operation == base for base in self._alternatives
        ):
            raise MachineDescriptionError(
                "unknown operation %r on machine %r" % (operation, self.name)
            )
        return default

    @property
    def num_operations(self) -> int:
        return len(self._operations)

    @property
    def num_resources(self) -> int:
        return len(self._resources)

    @property
    def total_usages(self) -> int:
        """Total (resource, cycle) usages across all operations."""
        return sum(t.usage_count for t in self._operations.values())

    @property
    def max_table_length(self) -> int:
        """Longest reservation table, in cycles."""
        return max(t.length for t in self._operations.values())

    def table(self, operation: str) -> ReservationTable:
        """Reservation table of ``operation`` (raises on unknown names)."""
        try:
            return self._operations[operation]
        except KeyError:
            raise MachineDescriptionError(
                "unknown operation %r on machine %r" % (operation, self.name)
            ) from None

    def __contains__(self, operation: str) -> bool:
        return operation in self._operations

    def items(self) -> Iterable[Tuple[str, ReservationTable]]:
        """Iterate ``(operation, table)`` pairs in sorted name order."""
        for op in sorted(self._operations):
            yield op, self._operations[op]

    def alternatives_of(self, operation: str) -> Tuple[str, ...]:
        """Alternative operations implementing ``operation``.

        For an operation with no registered alternatives this is the
        singleton of the operation itself.
        """
        if operation in self._alternatives:
            return self._alternatives[operation]
        if operation in self._operations:
            return (operation,)
        raise MachineDescriptionError(
            "unknown operation %r on machine %r" % (operation, self.name)
        )

    # ------------------------------------------------------------------
    # Derived descriptions
    # ------------------------------------------------------------------
    def with_operations(self, names: Iterable[str], name: str = None) -> "MachineDescription":
        """Sub-machine restricted to the given operations.

        Resource ordering is preserved; alternative groups are restricted to
        surviving variants and dropped when empty.
        """
        wanted = set(names)
        unknown = wanted - set(self._operations)
        if unknown:
            raise MachineDescriptionError("unknown operations: %s" % sorted(unknown))
        ops = {op: self._operations[op] for op in wanted}
        alt = {}
        for base, variants in self._alternatives.items():
            kept = tuple(v for v in variants if v in wanted)
            if kept:
                alt[base] = kept
        lat = {
            op: value
            for op, value in self._latencies.items()
            if op in wanted or op in alt
        }
        return MachineDescription(
            name or (self.name + "-subset"), ops, self._resources, alt, lat
        )

    def renamed(self, name: str) -> "MachineDescription":
        """Copy of this description under a new machine name."""
        return MachineDescription(
            name,
            self._operations,
            self._resources,
            self._alternatives,
            self._latencies,
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, MachineDescription):
            return NotImplemented
        return (
            self._operations == other._operations
            and self._resources == other._resources
            and self._alternatives == other._alternatives
            and self._latencies == other._latencies
        )

    def __hash__(self) -> int:
        return hash((self.name, frozenset(self._operations.items())))

    def __repr__(self) -> str:
        return "MachineDescription(%r, %d ops, %d resources, %d usages)" % (
            self.name,
            self.num_operations,
            self.num_resources,
            self.total_usages,
        )


class MachineBuilder:
    """Incremental builder for :class:`MachineDescription`.

    Supports the paper's *alternative usage* preprocessing: an operation
    declared with several usage variants is expanded into one operation per
    variant (named ``base.0``, ``base.1``, ...) and registered as an
    alternative group.

    Examples
    --------
    >>> b = MachineBuilder("toy")
    >>> b.operation("add", {"alu": [0]})
    >>> b.operation_with_alternatives("move", [{"alu": [0]}, {"mul": [0]}])
    >>> md = b.build()
    >>> md.alternatives_of("move")
    ('move.0', 'move.1')
    """

    def __init__(self, name: str):
        self.name = name
        self._resources: List[str] = []
        self._seen_resources = set()
        self._operations: Dict[str, object] = {}
        self._alternatives: Dict[str, List[str]] = {}
        self._latencies: Dict[str, int] = {}

    def resource(self, *names: str) -> "MachineBuilder":
        """Declare resources in order (idempotent per name)."""
        for n in names:
            if n not in self._seen_resources:
                self._seen_resources.add(n)
                self._resources.append(n)
        return self

    def operation(
        self,
        name: str,
        usages: Mapping[str, Iterable[int]],
        latency: Optional[int] = None,
    ) -> "MachineBuilder":
        """Declare an operation with fixed resource usages."""
        if name in self._operations:
            raise MachineDescriptionError("duplicate operation %r" % name)
        table = _as_table(usages)
        self.resource(*table.resources)
        self._operations[name] = table
        if latency is not None:
            self._latencies[name] = latency
        return self

    def latency(self, name: str, value: int) -> "MachineBuilder":
        """Attach result-latency metadata to an operation or group."""
        self._latencies[name] = value
        return self

    def operation_with_alternatives(
        self,
        base: str,
        variants: Sequence[Mapping[str, Iterable[int]]],
        latency: Optional[int] = None,
    ) -> "MachineBuilder":
        """Declare an operation with alternative resource usages.

        One operation per variant is created (``base.i``) and the group is
        recorded so schedulers can use ``check_with_alternatives``.
        """
        if not variants:
            raise MachineDescriptionError("operation %r has no variants" % base)
        if len(variants) == 1:
            self.operation(base, variants[0], latency=latency)
            return self
        names = []
        for i, usages in enumerate(variants):
            name = "%s%s%d" % (base, ALTERNATIVE_SEPARATOR, i)
            self.operation(name, usages)
            names.append(name)
        self._alternatives[base] = names
        if latency is not None:
            self._latencies[base] = latency
        return self

    def build(self) -> MachineDescription:
        """Finalize into an immutable :class:`MachineDescription`."""
        return MachineDescription(
            self.name,
            self._operations,
            self._resources,
            self._alternatives,
            self._latencies,
        )
