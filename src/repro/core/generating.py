"""Algorithm 1: building the generating set of maximal resources (Step 2).

The generating set is grown by processing one elementary pair at a time
against every resource accumulated so far:

* **Rule 1** — the pair is *fully compatible* with a resource (compatible
  with each of its usages): add the pair's usages to that resource.
* **Rule 2** — the pair is only *partially compatible*: leave the resource
  unchanged and add a new resource consisting of the pair plus every
  compatible usage of the old resource — unless that new resource is just
  the pair itself, in which case it is discarded.
* **Rule 3** — after Rules 1/2, if no current resource holds both usages of
  the pair together, add the pair itself as a new resource.
* **Rule 4** — finally, for each operation whose *only* forbidden latency is
  its zero self-contention, add a single-usage resource.

Theorem 1 (proved in the paper, re-checked by our test-suite) guarantees the
final set (a) never forbids a latency the target machine allows and (b)
contains every maximal resource of the target machine.

``prune_subsets_every`` enables an optimization discussed in DESIGN.md:
dropping a resource that is a subset of another current resource is safe
because any future Rule-1/2 product grown from the subset is dominated by
the product grown from its superset, so no maximal resource is lost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.core.elementary import (
    Resource,
    elementary_pairs,
    pair_usages,
)
from repro.core.forbidden import ForbiddenLatencyMatrix
from repro.obs import trace as obs


@dataclass
class RuleApplication:
    """One rule firing while processing an elementary pair (for traces)."""

    rule: int
    target: Optional[Resource]
    result: Optional[Resource]


@dataclass
class TraceStep:
    """Snapshot of the generating set after processing one elementary pair."""

    pair: Resource
    applications: List[RuleApplication] = field(default_factory=list)
    resources: Tuple[Resource, ...] = ()


def _prune_subset_resources(resources: List[Resource]) -> List[Resource]:
    """Drop resources contained in another resource of the list."""
    ordered = sorted(set(resources), key=len, reverse=True)
    kept: List[Resource] = []
    for candidate in ordered:
        if not any(candidate < existing for existing in kept):
            kept.append(candidate)
    # Preserve the original first-seen order among survivors.
    survivors = set(kept)
    result = []
    seen = set()
    for resource in resources:
        if resource in survivors and resource not in seen:
            seen.add(resource)
            result.append(resource)
    return result


def build_generating_set(
    matrix: ForbiddenLatencyMatrix,
    prune_subsets_every: Optional[int] = 64,
    trace: Optional[Callable[[TraceStep], None]] = None,
    budget=None,
) -> List[Resource]:
    """Run Algorithm 1 and return the generating set of maximal resources.

    Parameters
    ----------
    matrix:
        Forbidden latency matrix of the target machine.
    prune_subsets_every:
        Drop subset-dominated resources after every N elementary pairs
        (``None`` disables pruning, reproducing the textbook algorithm).
    trace:
        Optional callback receiving a :class:`TraceStep` after each pair —
        used to regenerate the paper's Figure 3.
    budget:
        Optional :class:`repro.resilience.Budget` checked once per
        elementary pair (charged one unit per resource the pair is matched
        against).  :class:`~repro.errors.BudgetExceeded` carries phase
        ``"generating_set"``, the number of pairs processed, and the
        resource list grown so far as its partial result.
    """
    resources: List[Resource] = []
    worklist = elementary_pairs(matrix)
    operations = matrix.operations
    tracer = obs.current()
    if tracer is not None:
        tracer.count("reduce.algorithm1.pairs", len(worklist))
    for processed, pair in enumerate(worklist, start=1):
        if budget is not None:
            budget.checkpoint(
                "generating_set",
                units=1 + len(resources),
                progress="%d/%d pairs" % (processed - 1, len(worklist)),
                partial=list(resources),
            )
        step = TraceStep(pair=pair) if trace is not None else None
        u0, u1 = pair_usages(pair)
        # Hot path: precompute, per operation, the set of cycles at which
        # a usage is compatible with BOTH usages of this pair.  A usage
        # (B, b) is compatible with (X, x) iff (x - b) is in F[B][X], so
        # the per-operation set is an intersection of two shifted
        # forbidden sets and each membership test below is one lookup.
        op_x, cycle_x = u0
        op_y, cycle_y = u1
        allowed = {}
        for op in operations:
            with_first = {
                cycle_x - g for g in matrix.latencies(op, op_x)
            }
            with_second = {
                cycle_y - g for g in matrix.latencies(op, op_y)
            }
            common = with_first & with_second
            if common:
                allowed[op] = common
        found_together = False
        additions: List[Resource] = []
        for index, current in enumerate(resources):
            compatible = frozenset(
                u for u in current if u[1] in allowed.get(u[0], ())
            )
            if len(compatible) == len(current):
                # Rule 1: fully compatible -> merge the pair in.
                merged = current | pair
                resources[index] = merged
                found_together = True
                if tracer is not None:
                    tracer.count("reduce.algorithm1.rule1")
                if step is not None:
                    step.applications.append(RuleApplication(1, current, merged))
            else:
                # Rule 2: partially compatible -> candidate new resource.
                candidate = pair | compatible
                if candidate != pair:
                    additions.append(candidate)
                    found_together = True
                    if tracer is not None:
                        tracer.count("reduce.algorithm1.rule2")
                    if step is not None:
                        step.applications.append(
                            RuleApplication(2, current, candidate)
                        )
                elif step is not None:
                    step.applications.append(RuleApplication(2, current, None))
        existing = set(resources)
        for candidate in additions:
            if candidate not in existing:
                existing.add(candidate)
                resources.append(candidate)
        if not found_together:
            # Rule 3: the pair starts a resource of its own.
            if pair not in existing:
                resources.append(pair)
            if tracer is not None:
                tracer.count("reduce.algorithm1.rule3")
            if step is not None:
                step.applications.append(RuleApplication(3, None, pair))
        if prune_subsets_every and processed % prune_subsets_every == 0:
            before = len(resources)
            resources = _prune_subset_resources(resources)
            if tracer is not None:
                tracer.count("reduce.algorithm1.subset_pruned",
                             before - len(resources))
        if step is not None:
            step.resources = tuple(resources)
            trace(step)

    # Rule 4: operations whose only forbidden latency is 0 in F[X][X].
    for op in matrix.operations:
        self_latencies = matrix.latencies(op, op)
        if self_latencies != frozenset({0}):
            continue
        others = any(
            (matrix.latencies(op, other) or matrix.latencies(other, op))
            for other in matrix.operations
            if other != op
        )
        if others:
            continue
        singleton = frozenset({(op, 0)})
        if not any(any(u[0] == op for u in resource) for resource in resources):
            resources.append(singleton)
            if tracer is not None:
                tracer.count("reduce.algorithm1.rule4")
            if trace is not None:
                trace(
                    TraceStep(
                        pair=singleton,
                        applications=[RuleApplication(4, None, singleton)],
                        resources=tuple(resources),
                    )
                )

    return _prune_subset_resources(resources)
