"""Pruning of the generating set (paper Section 5, heuristic step 1).

Algorithm 1 may leave some submaximal resources and redundant maximal ones
(for example mirror images of other maximal resources) in the generating
set.  Before selection we "successively remove each resource that produces a
set of forbidden latencies that is generated or covered by a remaining
resource".
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

from repro.core.elementary import Resource, generated_instances
from repro.core.forbidden import Instance


def coverage_map(resources: Iterable[Resource]) -> Dict[Resource, Set[Instance]]:
    """Map each resource to the canonical instances it generates.

    De-duplicates in first-seen order so the map's iteration order is a
    function of the input, not of hash seeds.
    """
    return {
        resource: generated_instances(resource)
        for resource in dict.fromkeys(resources)
    }


def prune_covered_resources(resources: Iterable[Resource]) -> List[Resource]:
    """Drop every resource whose coverage is contained in a kept resource's.

    Resources are considered in decreasing coverage size so that the kept
    set is inclusion-maximal; ties are broken deterministically on the
    sorted usage tuples.  The result preserves the union of coverages (each
    removed resource is covered by a kept one), which is all the selection
    step needs.
    """
    coverages = coverage_map(resources)
    ordered = sorted(
        coverages,
        key=lambda r: (-len(coverages[r]), sorted(r)),
    )
    kept: List[Resource] = []
    for resource in ordered:
        coverage = coverages[resource]
        if any(coverage <= coverages[other] for other in kept):
            continue
        kept.append(resource)
    return kept
