"""Forbidden latency matrices and operation classes (paper Step 1).

Two operations X and Y scheduled at times ``tX`` and ``tY`` conflict iff
there is a resource ``i`` and usage cycles ``z`` in the usage set ``X_i`` and
``y`` in ``Y_i`` with ``tX + z == tY + y``.  The conflict happens exactly
when X issues ``y - z`` cycles after Y, so the *forbidden latency set* is::

    F[X][Y] = { y - z : resource i, z in X_i, y in Y_i }

The matrix of these sets is the complete characterization of the scheduling
constraints of a machine: two descriptions are interchangeable for any
scheduler iff they induce the same matrix (paper, Section 3).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Tuple

from repro.core.machine import MachineDescription

_EMPTY: FrozenSet[int] = frozenset()

#: A coverage instance: operation X may not issue f >= 0 cycles after Y.
Instance = Tuple[str, str, int]


def canonical_instance(op_x: str, op_y: str, latency: int) -> Instance:
    """Normalize a forbidden latency to its canonical non-negative instance.

    ``f in F[X][Y]`` and ``-f in F[Y][X]`` describe the same constraint, so
    negative latencies map to the mirrored pair and zero latencies are keyed
    on the lexicographically ordered pair.
    """
    if latency < 0:
        return (op_y, op_x, -latency)
    if latency == 0 and op_y < op_x:
        return (op_y, op_x, 0)
    return (op_x, op_y, latency)


class ForbiddenLatencyMatrix:
    """The forbidden latency sets of every ordered operation pair.

    Built with :meth:`from_machine`; equality compares the full matrices
    (operations and sets), which is the paper's notion of two machine
    descriptions *preserving scheduling constraints*.
    """

    __slots__ = ("operations", "_sets")

    def __init__(self, operations: Tuple[str, ...], sets: Dict[Tuple[str, str], FrozenSet[int]]):
        self.operations = tuple(operations)
        self._sets = {pair: latencies for pair, latencies in sets.items() if latencies}

    @classmethod
    def from_machine(
        cls, machine: MachineDescription, budget=None
    ) -> "ForbiddenLatencyMatrix":
        """Compute the matrix of a machine description (paper Step 1).

        ``budget`` is an optional :class:`repro.resilience.Budget` checked
        once per resource row (one unit per row's usage cross-product);
        exceeding it raises :class:`~repro.errors.BudgetExceeded` with
        phase ``"forbidden_matrix"``.
        """
        ops = machine.operation_names
        # Index usages by resource once: resource -> list of (op, cycles).
        by_resource: Dict[str, List[Tuple[str, FrozenSet[int]]]] = {}
        for op in ops:
            table = machine.table(op)
            for resource in table.resources:
                by_resource.setdefault(resource, []).append(
                    (op, table.usage_set(resource))
                )
        sets: Dict[Tuple[str, str], set] = {}
        for users in by_resource.values():
            if budget is not None:
                budget.checkpoint(
                    "forbidden_matrix", units=len(users),
                    progress=len(sets),
                )
            for op_x, cycles_x in users:
                for op_y, cycles_y in users:
                    bucket = sets.setdefault((op_x, op_y), set())
                    for z in cycles_x:
                        for y in cycles_y:
                            bucket.add(y - z)
        frozen = {pair: frozenset(v) for pair, v in sets.items()}
        return cls(ops, frozen)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def latencies(self, op_x: str, op_y: str) -> FrozenSet[int]:
        """F[X][Y]: distances at which X may not issue after Y."""
        return self._sets.get((op_x, op_y), _EMPTY)

    def is_forbidden(self, op_x: str, op_y: str, latency: int) -> bool:
        """True when X issuing ``latency`` cycles after Y is forbidden."""
        return latency in self._sets.get((op_x, op_y), _EMPTY)

    def pairs(self) -> Iterator[Tuple[str, str, FrozenSet[int]]]:
        """Iterate all ``(X, Y, F[X][Y])`` entries with non-empty sets."""
        for (op_x, op_y) in sorted(self._sets):
            yield op_x, op_y, self._sets[(op_x, op_y)]

    def instances(self) -> List[Instance]:
        """All canonical non-negative instances, sorted.

        By the symmetry ``f in F[X][Y]  <=>  -f in F[Y][X]`` this list
        carries the full information of the matrix; it is the coverage
        universe of the reduction's selection step.
        """
        result = set()
        for (op_x, op_y), latencies in self._sets.items():
            for f in latencies:
                result.add(canonical_instance(op_x, op_y, f))
        return sorted(result)

    @property
    def instance_count(self) -> int:
        """Number of canonical non-negative forbidden latencies."""
        return len(self.instances())

    @property
    def max_latency(self) -> int:
        """Largest forbidden latency magnitude (0 for an empty matrix)."""
        best = 0
        for latencies in self._sets.values():
            for f in latencies:
                if abs(f) > best:
                    best = abs(f)
        return best

    def uses_resources(self, op: str) -> bool:
        """True when ``op`` has any forbidden latency (i.e. uses resources)."""
        return bool(self._sets.get((op, op)))

    # ------------------------------------------------------------------
    # Operation classes
    # ------------------------------------------------------------------
    def same_class(self, op_x: str, op_y: str) -> bool:
        """Paper definition: F[X][Z] == F[Y][Z] and F[Z][X] == F[Z][Y]
        for every operation Z of the machine."""
        for op_z in self.operations:
            if self.latencies(op_x, op_z) != self.latencies(op_y, op_z):
                return False
            if self.latencies(op_z, op_x) != self.latencies(op_z, op_y):
                return False
        return True

    def operation_classes(self) -> List[Tuple[str, ...]]:
        """Partition operations into classes of interchangeable operations.

        Returns sorted tuples; the first member of each tuple is the class
        representative by convention.
        """
        classes: List[List[str]] = []
        for op in self.operations:
            for members in classes:
                if self.same_class(op, members[0]):
                    members.append(op)
                    break
            else:
                classes.append([op])
        return sorted(tuple(sorted(c)) for c in classes)

    # ------------------------------------------------------------------
    # Comparison
    # ------------------------------------------------------------------
    def differences(self, other: "ForbiddenLatencyMatrix") -> List[Tuple[str, str, FrozenSet[int], FrozenSet[int]]]:
        """Operation pairs whose forbidden sets differ between two matrices.

        Returns ``(X, Y, only_in_self, only_in_other)`` tuples; empty means
        the matrices are equivalent.  Operations present in only one matrix
        are reported with the other side empty.
        """
        result = []
        all_pairs = set(self._sets) | set(other._sets)
        for pair in sorted(all_pairs):
            mine = self._sets.get(pair, _EMPTY)
            theirs = other._sets.get(pair, _EMPTY)
            if mine != theirs:
                result.append((pair[0], pair[1], mine - theirs, theirs - mine))
        return result

    def __eq__(self, other) -> bool:
        if not isinstance(other, ForbiddenLatencyMatrix):
            return NotImplemented
        return self._sets == other._sets

    def __hash__(self) -> int:  # pragma: no cover - matrices are not dict keys
        return hash(frozenset(self._sets.items()))

    def __repr__(self) -> str:
        return "ForbiddenLatencyMatrix(%d ops, %d instances, max latency %d)" % (
            len(self.operations),
            self.instance_count,
            self.max_latency,
        )


def collapse_to_classes(machine: MachineDescription) -> Tuple[MachineDescription, Dict[str, str]]:
    """Collapse a machine to one representative operation per class.

    Returns the collapsed description plus the ``operation -> representative``
    mapping.  Queries against the collapsed machine are exact because class
    members have identical forbidden latency rows and columns by definition.
    """
    matrix = ForbiddenLatencyMatrix.from_machine(machine)
    mapping: Dict[str, str] = {}
    representatives = []
    for members in matrix.operation_classes():
        rep = members[0]
        representatives.append(rep)
        for op in members:
            mapping[op] = rep
    collapsed = machine.with_operations(representatives, machine.name + "-classes")
    return collapsed, mapping
