"""Equivalence checking between machine descriptions.

Two machine descriptions *preserve scheduling constraints* of one another
exactly when they induce the same forbidden latency matrix (paper,
Section 3): any contention query against either description then returns
the same answer for every operation pair and distance, hence any scheduler
produces identical schedules with either description.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.forbidden import ForbiddenLatencyMatrix
from repro.core.machine import MachineDescription
from repro.errors import EquivalenceError


def matrices_equal(
    first: MachineDescription, second: MachineDescription
) -> bool:
    """True when the two descriptions induce identical forbidden latencies."""
    return ForbiddenLatencyMatrix.from_machine(first) == (
        ForbiddenLatencyMatrix.from_machine(second)
    )


def differences(
    first: MachineDescription, second: MachineDescription
) -> List[Tuple[str, str, frozenset, frozenset]]:
    """Operation pairs whose forbidden latency sets differ between machines."""
    return ForbiddenLatencyMatrix.from_machine(first).differences(
        ForbiddenLatencyMatrix.from_machine(second)
    )


def assert_equivalent(
    first: MachineDescription, second: MachineDescription
) -> None:
    """Raise :class:`EquivalenceError` unless the machines are equivalent.

    The error's ``mismatches`` attribute lists every differing operation
    pair with the latencies unique to each side, which makes debugging a
    broken hand-reduction straightforward — the very failure mode of the
    manual reductions the paper set out to eliminate.
    """
    mismatches = differences(first, second)
    if mismatches:
        sample = ", ".join(
            "%s/%s" % (x, y) for x, y, _, _ in mismatches[:4]
        )
        raise EquivalenceError(
            "machines %r and %r disagree on %d operation pairs (e.g. %s)"
            % (first.name, second.name, len(mismatches), sample),
            mismatches,
        )


def schedule_is_contention_free(
    machine: MachineDescription, placements: List[Tuple[str, int]]
) -> bool:
    """Ground-truth check: is a full schedule free of resource contention?

    ``placements`` is a list of ``(operation, issue_cycle)`` pairs.  The
    check overlays every operation's reservation table on a global reserved
    grid — O(total usages), used by tests and as the brute-force oracle for
    the query modules.
    """
    reserved = set()
    for op, issue in placements:
        table = machine.table(op)
        for resource, cycle in table.iter_usages():
            slot = (resource, issue + cycle)
            if slot in reserved:
                return False
            reserved.add(slot)
    return True
