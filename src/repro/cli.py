"""Command-line interface: ``repro <command>`` (or ``python -m repro``).

Commands
--------
``reduce``    reduce a machine description and optionally write it out
``verify``    check that two descriptions preserve the same constraints
``stats``     print the Tables 1-4 metrics for a description
``show``      dump a (built-in) machine as MDL text
``schedule``  modulo-schedule the named kernels or a generated loop suite
``report``    human-readable machine / reduction report
``diff``      scheduling-constraint diff between two descriptions
``expand``    modulo-schedule a kernel and print its software pipeline
``automata``  build the contention-recognizing automata and report sizes

Machines are referenced either by a built-in name (``cydra5``,
``cydra5-subset``, ``alpha21064``, ``mips-r3000``, ``playdoh``,
``example``) or by the path of an MDL file.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import mdl
from repro.core import reduce_machine
from repro.core.forbidden import ForbiddenLatencyMatrix
from repro.core.machine import MachineDescription
from repro.core.verify import differences
from repro.errors import ReproError
from repro.machines import STUDY_MACHINES, example_machine, playdoh
from repro.scheduler import IterativeModuloScheduler
from repro.stats import describe
from repro.workloads import KERNELS, loop_suite

_BUILTINS = dict(STUDY_MACHINES)
_BUILTINS["example"] = example_machine
_BUILTINS["playdoh"] = playdoh


def _load_machine(ref: str) -> MachineDescription:
    if ref in _BUILTINS:
        return _BUILTINS[ref]()
    return mdl.load_file(ref)


def _cmd_reduce(args: argparse.Namespace) -> int:
    machine = _load_machine(args.machine)
    reduction = reduce_machine(
        machine, objective=args.objective, word_cycles=args.word_cycles
    )
    print(reduction.summary())
    if args.output:
        mdl.dump_file(reduction.reduced, args.output)
        print("wrote %s" % args.output)
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    first = _load_machine(args.first)
    second = _load_machine(args.second)
    mismatches = differences(first, second)
    if not mismatches:
        print(
            "EQUIVALENT: %r and %r preserve the same scheduling constraints"
            % (first.name, second.name)
        )
        return 0
    print("NOT EQUIVALENT: %d differing operation pairs" % len(mismatches))
    for op_x, op_y, only_first, only_second in mismatches[: args.limit]:
        print(
            "  %s / %s: only-first=%s only-second=%s"
            % (op_x, op_y, sorted(only_first), sorted(only_second))
        )
    return 1


def _cmd_stats(args: argparse.Namespace) -> int:
    machine = _load_machine(args.machine)
    matrix = ForbiddenLatencyMatrix.from_machine(machine)
    stats = describe(machine, word_cycles=tuple(args.word_cycles))
    print("machine:                %s" % machine.name)
    print("operations:             %d" % machine.num_operations)
    print("operation classes:      %d" % len(matrix.operation_classes()))
    print("resources:              %d" % stats.num_resources)
    print("total usages:           %d" % machine.total_usages)
    print("avg usages/op:          %.1f" % stats.avg_usages_per_op)
    print("forbidden latencies:    %d (max %d)" % (
        matrix.instance_count, matrix.max_latency))
    for k in args.word_cycles:
        print(
            "avg %d-cycle-word uses:  %.1f" % (k, stats.avg_word_usages[k])
        )
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    machine = _load_machine(args.machine)
    sys.stdout.write(mdl.dumps(machine))
    return 0


def _cmd_schedule(args: argparse.Namespace) -> int:
    machine = _load_machine(args.machine)
    scheduler = IterativeModuloScheduler(
        machine,
        representation=args.representation,
        word_cycles=args.word_cycles,
    )
    if args.kernel:
        graphs = [KERNELS[args.kernel]()]
    else:
        graphs = loop_suite(args.loops)
    optimal = 0
    print("%-22s %4s %4s %4s %8s" % ("loop", "ops", "MII", "II", "dec/op"))
    for graph in graphs:
        result = scheduler.schedule(graph)
        optimal += result.optimal
        print(
            "%-22s %4d %4d %4d %8.2f"
            % (
                graph.name,
                graph.num_operations,
                result.mii,
                result.ii,
                result.decisions_per_op,
            )
        )
    print(
        "\n%d/%d loops scheduled at MII (%.1f%%)"
        % (optimal, len(graphs), 100.0 * optimal / len(graphs))
    )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis import describe_machine, describe_reduction

    machine = _load_machine(args.machine)
    print(describe_machine(machine))
    if args.reduce:
        print()
        print(
            describe_reduction(
                reduce_machine(
                    machine,
                    objective=args.objective,
                    word_cycles=args.word_cycles,
                )
            )
        )
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    from repro.analysis import diff_constraints
    from repro.core import find_witness

    first = _load_machine(args.first)
    second = _load_machine(args.second)
    text = diff_constraints(first, second, limit=args.limit)
    print(text)
    if text.startswith("EQUIVALENT"):
        return 0
    witness = find_witness(first, second)
    if witness is not None:
        print("witness: " + witness.describe())
    return 1


def _cmd_expand(args: argparse.Namespace) -> int:
    from repro.scheduler import expand

    machine = _load_machine(args.machine)
    scheduler = IterativeModuloScheduler(machine)
    graph = KERNELS[args.kernel]()
    result = scheduler.schedule(graph)
    expanded = expand(result, iterations=args.iterations)
    print(
        "%s on %s: II=%d (MII=%d), %d stages"
        % (graph.name, machine.name, result.ii, result.mii,
           expanded.num_stages)
    )
    print()
    print(expanded.render_kernel())
    print()
    print("timeline (%d iterations):" % args.iterations)
    print(expanded.render_timeline(limit=args.limit))
    return 0


def _cmd_automata(args: argparse.Namespace) -> int:
    from repro.automata import (
        AutomatonTooLarge,
        FactoredAutomata,
        PipelineAutomaton,
    )

    machine = _load_machine(args.machine)
    try:
        monolithic = PipelineAutomaton.build(
            machine, max_states=args.max_states
        )
        print(
            "monolithic automaton: %d states, %d transitions (~%d KiB)"
            % (
                monolithic.num_states,
                monolithic.num_transitions,
                monolithic.memory_bytes() // 1024,
            )
        )
    except AutomatonTooLarge:
        print(
            "monolithic automaton: exceeds %d states" % args.max_states
        )
    try:
        factored = FactoredAutomata.build(
            machine, mode=args.factor, max_states=args.max_states
        )
        print(
            "%s-factored automata: %d factors, %d total states "
            "(largest %d, ~%d KiB)"
            % (
                args.factor,
                factored.num_factors,
                factored.num_states,
                factored.max_factor_states,
                factored.memory_bytes() // 1024,
            )
        )
    except AutomatonTooLarge:
        print(
            "%s-factored automata: a factor exceeds %d states"
            % (args.factor, args.max_states)
        )
    print(
        "reduced bitvector alternative: %d reserved bits per cycle"
        % reduce_machine(machine).reduced.num_resources
    )
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    from repro.stats import render_reduction_table

    machine = _load_machine(args.machine)
    reductions = {"res-uses": reduce_machine(machine)}
    for k in args.word_cycles:
        reductions["%d-cycle-word" % k] = reduce_machine(
            machine, objective="word-uses", word_cycles=k
        )
    print(
        render_reduction_table(
            "Machine description metrics: %s" % machine.name,
            machine,
            reductions,
            word_cycles=tuple(args.word_cycles),
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reduced multipipeline machine descriptions "
        "(Eichenberger & Davidson, PLDI 1996)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("reduce", help="reduce a machine description")
    p.add_argument("machine", help="built-in name or MDL file")
    p.add_argument(
        "--objective",
        choices=("res-uses", "word-uses"),
        default="res-uses",
    )
    p.add_argument("--word-cycles", type=int, default=1)
    p.add_argument("-o", "--output", help="write reduced machine as MDL")
    p.set_defaults(func=_cmd_reduce)

    p = sub.add_parser("verify", help="compare two descriptions")
    p.add_argument("first")
    p.add_argument("second")
    p.add_argument("--limit", type=int, default=8)
    p.set_defaults(func=_cmd_verify)

    p = sub.add_parser("stats", help="print description metrics")
    p.add_argument("machine")
    p.add_argument(
        "--word-cycles", type=int, nargs="+", default=[1, 2, 4]
    )
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser("show", help="dump a machine as MDL")
    p.add_argument("machine")
    p.set_defaults(func=_cmd_show)

    p = sub.add_parser(
        "table", help="render the Tables 1-4 metrics for a machine"
    )
    p.add_argument("machine")
    p.add_argument("--word-cycles", type=int, nargs="+", default=[1, 2, 4])
    p.set_defaults(func=_cmd_table)

    p = sub.add_parser("report", help="machine / reduction report")
    p.add_argument("machine")
    p.add_argument("--reduce", action="store_true")
    p.add_argument(
        "--objective", choices=("res-uses", "word-uses"), default="res-uses"
    )
    p.add_argument("--word-cycles", type=int, default=1)
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("diff", help="scheduling-constraint diff")
    p.add_argument("first")
    p.add_argument("second")
    p.add_argument("--limit", type=int, default=20)
    p.set_defaults(func=_cmd_diff)

    p = sub.add_parser("expand", help="print a software pipeline")
    p.add_argument("machine")
    p.add_argument("--kernel", choices=sorted(KERNELS), default="daxpy")
    p.add_argument("--iterations", type=int, default=4)
    p.add_argument("--limit", type=int, default=48)
    p.set_defaults(func=_cmd_expand)

    p = sub.add_parser("automata", help="automata size report")
    p.add_argument("machine")
    p.add_argument("--factor", choices=("unit", "resource"), default="unit")
    p.add_argument("--max-states", type=int, default=200_000)
    p.set_defaults(func=_cmd_automata)

    p = sub.add_parser("schedule", help="run the modulo scheduler")
    p.add_argument("machine")
    p.add_argument("--kernel", choices=sorted(KERNELS))
    p.add_argument("--loops", type=int, default=20)
    p.add_argument(
        "--representation",
        choices=("discrete", "bitvector"),
        default="discrete",
    )
    p.add_argument("--word-cycles", type=int, default=1)
    p.set_defaults(func=_cmd_schedule)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
