"""Command-line interface: ``repro <command>`` (or ``python -m repro``).

Commands
--------
``reduce``    reduce a machine description and optionally write it out
``verify``    check that two descriptions preserve the same constraints
``certify``   issue or independently check a preservation certificate
``stats``     print the Tables 1-4 metrics for a description
``show``      dump a (built-in) machine as MDL text
``schedule``  modulo-schedule the named kernels or a generated loop suite
``explain``   scheduling provenance: MII attribution, per-II failure
              blame, decision-ledger rollups (text/JSON/HTML)
``report``    human-readable machine / reduction report
``diff``      scheduling-constraint diff between two descriptions
``expand``    modulo-schedule a kernel and print its software pipeline
``automata``  build the contention-recognizing automata and report sizes
``lint``      static-analysis audit: machine descriptions, or with
              ``--code`` the repro sources themselves
``profile``   reduce + schedule under tracing; per-phase time/work report
``chaos``     deterministic fault injection against the resilience layer
``fuzz``      seeded fuzz campaign: generated machines through the
              differential pipeline oracle (plus composed chaos plans)
``bench``     benchmark observatory: ``run`` / ``compare`` / ``report``
``runs``      run registry: ``list`` / ``show`` / ``diff`` / ``trend`` /
              ``gc`` / ``metrics`` (OpenMetrics export)

``certify`` validates Theorem-1 witness certificates without re-running
the reduction (``repro certify ORIG REDUCED [--cert FILE]``); ``reduce``
emits one with ``--certificate FILE``, and ``reduce --cache`` verifies
warm hits via their stored certificate unless ``--paranoid`` — see
``docs/certificates.md``.

``bench run`` records a schema-versioned, checksummed benchmark result
(deterministic work units, robust wall-time stats, per-phase spans,
schedule quality); ``bench compare`` gates a candidate run against a
baseline (work units gate hard, wall time only when bootstrap intervals
disagree) and exits 1 on regression — see ``docs/benchmarking.md``.

``reduce`` and ``schedule`` accept ``--deadline``/``--max-units`` budgets
(exceeded budgets exit 3) and ``--fallback`` to degrade down the verified
fallback ladder instead of failing — see ``docs/robustness.md``.

``reduce``, ``schedule``, ``automata``, and ``profile`` accept
``--metrics FILE`` (schema-versioned JSON metrics, ``-`` for stdout) and
``--trace FILE`` (Chrome ``trace_event`` JSON, loadable in Perfetto) —
see ``docs/observability.md``.

``explain`` replays the scheduler under a decision ledger and reports
*why* each loop scheduled at its II (``repro-explain-report`` v1);
``schedule --explain FILE`` writes the same document alongside a normal
run — see ``docs/explain.md``.

``reduce``, ``schedule``, ``bench run``, ``certify``, ``fuzz``,
``chaos``, ``profile``, and ``explain`` accept ``--runlog DIR`` (or the
``REPRO_RUNLOG`` environment variable) to append one checksummed
``repro-runlog-record`` v1 document per invocation to the persistent run
registry; ``repro runs`` queries it — see ``docs/runs.md``.

``fuzz`` generates seeded, lintable machine descriptions and pushes each
through reduce → certify → schedule, cross-checking the three query
representations and classifying every run ``ok`` / ``handled`` / ``bug``
(``repro fuzz --seed N --runs M [--shrink] [--out FILE]``) — see
``docs/fuzzing.md``.

Machines are referenced either by a built-in name (``cydra5``,
``cydra5-subset``, ``alpha21064``, ``mips-r3000``, ``playdoh``,
``example``, ``buffered-pu``, ``clustered-vliw``) or by the path of an
MDL file.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import sys
from typing import List, Optional, Tuple

from repro import mdl
from repro.core import reduce_machine
from repro.core.forbidden import ForbiddenLatencyMatrix
from repro.core.machine import MachineDescription
from repro.core.verify import differences
from repro.errors import BudgetExceeded, ReproError
from repro.machines import (
    CORPUS_MACHINES,
    STUDY_MACHINES,
    example_machine,
    playdoh,
)
from repro.scheduler import IterativeModuloScheduler
from repro.stats import describe
from repro.workloads import KERNELS, loop_suite

_BUILTINS = dict(STUDY_MACHINES)
_BUILTINS["example"] = example_machine
_BUILTINS["playdoh"] = playdoh
_BUILTINS.update(CORPUS_MACHINES)


def _load_machine(ref: str) -> MachineDescription:
    if ref in _BUILTINS:
        return _BUILTINS[ref]()
    if os.sep in ref or ref.endswith(".mdl") or os.path.exists(ref):
        try:
            return mdl.load_file(ref)
        except (OSError, UnicodeDecodeError) as exc:
            raise ReproError(
                "cannot read machine file %r: %s" % (ref, exc)
            ) from exc
    raise ReproError(
        "unknown machine %r: not a built-in machine and not an existing"
        " MDL file (built-ins: %s)" % (ref, ", ".join(sorted(_BUILTINS)))
    )


# ----------------------------------------------------------------------
# Run registry (flight recorder) plumbing.  One recorder is active per
# recorded invocation (see main()); command bodies contribute what they
# know through these helpers, each a no-op when the runlog is off so the
# disabled path stays a single global read.
# ----------------------------------------------------------------------
_RECORDER = None
_RECORDER_BUDGETS: List[object] = []

#: Commands that append a registry record when ``--runlog`` is set.  The
#: ``runs`` query family never records itself — reading the registry
#: must not grow it.
_RECORDED_COMMANDS = frozenset(
    ("reduce", "schedule", "certify", "fuzz", "chaos", "profile", "explain")
)


def _record_command(args: argparse.Namespace) -> Optional[str]:
    """The registry command label for this invocation, or ``None``."""
    command = getattr(args, "command", None)
    if command in _RECORDED_COMMANDS:
        return command
    if command == "bench" and getattr(args, "bench_command", None) == "run":
        return "bench run"
    return None


def _runlog_note(**fields) -> None:
    if _RECORDER is not None:
        _RECORDER.note(**fields)


def _runlog_units(units) -> None:
    if _RECORDER is not None:
        _RECORDER.add_units(units)


def _runlog_work(work) -> None:
    if _RECORDER is not None:
        _RECORDER.add_work(work)


def _runlog_quality(**quality) -> None:
    if _RECORDER is not None:
        _RECORDER.merge_quality(quality)


def _runlog_harvest(tracer) -> None:
    """Copy a tracer's query work and profile quality into the recorder.

    The shared registry keys (``query.<fn>.units`` counters, per-function
    timers, ``profile.*`` quality counters) are the same ones the metrics
    JSON reads, so a runlog record and a ``--metrics`` export of the same
    run always agree.
    """
    if _RECORDER is None or tracer is None:
        return
    from repro.obs.instrument import QUERY_FUNCTIONS

    units = {}
    for function in QUERY_FUNCTIONS:
        name = "query." + function
        value = tracer.metrics.get_counter(name + ".units")
        if value:
            units[function] = value
        timer = tracer.metrics.timers.get(name)
        if timer is not None and timer.count:
            _RECORDER.calls[function] = (
                _RECORDER.calls.get(function, 0) + timer.count
            )
    _RECORDER.add_units(units)
    quality = {}
    for key in ("loops", "loops_at_mii", "ii_total", "mii_total"):
        value = tracer.metrics.get_counter("profile." + key)
        if value:
            quality[key] = value
    if quality:
        _RECORDER.merge_quality(quality)


@contextlib.contextmanager
def _observing(args: argparse.Namespace):
    """Activate tracing for a command when ``--trace``/``--metrics`` ask.

    Yields the tracer (or ``None`` when observability is off) and writes
    the requested export files after the command body finishes.  An
    active run recorder also forces tracing on — the registry record
    needs the work-counter snapshot — but with the runlog off the
    untraced zero-overhead path is untouched.
    """
    trace_path = getattr(args, "trace", None)
    metrics_path = getattr(args, "metrics", None)
    if not trace_path and not metrics_path and _RECORDER is None:
        yield None
        return
    from repro import obs

    tracer = obs.Tracer(trace_queries=bool(trace_path))
    with obs.tracing(tracer):
        if metrics_path == "-":
            # Stdout must carry the JSON document alone; the command's
            # human-readable report moves to stderr.
            with contextlib.redirect_stdout(sys.stderr):
                yield tracer
        else:
            yield tracer
    _runlog_harvest(tracer)
    if metrics_path:
        _write_export(obs.write_metrics, tracer, metrics_path, "metrics")
        if metrics_path != "-":
            print("wrote metrics %s" % metrics_path, file=sys.stderr)
    if trace_path:
        _write_export(obs.write_chrome_trace, tracer, trace_path, "trace")
        print(
            "wrote trace %s (open in https://ui.perfetto.dev)" % trace_path,
            file=sys.stderr,
        )


def _write_export(writer, tracer, path: str, what: str) -> None:
    try:
        writer(tracer, path)
    except OSError as exc:
        raise ReproError("cannot write %s file %r: %s" % (what, path, exc))


def _add_observability_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--metrics",
        metavar="FILE",
        help="write metrics JSON to FILE ('-' for stdout)",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        help="write a Chrome trace_event JSON to FILE (Perfetto-loadable)",
    )


def _make_budget(args: argparse.Namespace, label: str):
    """A :class:`~repro.resilience.Budget` from ``--deadline``/``--max-units``
    (``None`` when neither flag is given)."""
    deadline = getattr(args, "deadline", None)
    max_units = getattr(args, "max_units", None)
    if deadline is None and max_units is None:
        return None
    from repro.resilience import Budget

    budget = Budget(deadline_s=deadline, max_units=max_units, label=label)
    if _RECORDER is not None:
        # Remember the object so the registry record can report the
        # units actually consumed, not just the configured caps.
        _RECORDER_BUDGETS.append(budget)
    return budget


def _add_runlog_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--runlog",
        metavar="DIR",
        help="append a checksummed run record to this registry directory"
        " (default: $REPRO_RUNLOG when set; see 'repro runs')",
    )


def _add_resilience_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--deadline",
        type=float,
        metavar="SECONDS",
        help="wall-clock budget; exceeded budgets exit 3 (or degrade"
        " with --fallback)",
    )
    parser.add_argument(
        "--max-units",
        type=int,
        metavar="N",
        help="work-unit budget (same currency as the query metrics)",
    )
    parser.add_argument(
        "--fallback",
        action="store_true",
        help="degrade down the verified fallback ladder instead of failing",
    )


def _cmd_reduce(args: argparse.Namespace) -> int:
    machine = _load_machine(args.machine)
    _runlog_note(machine=machine.name, rung="full")
    with _observing(args) as tracer:
        if tracer is not None:
            tracer.meta.update(
                command="reduce", machine=machine.name,
                objective=args.objective, word_cycles=args.word_cycles,
            )
        certificate = None
        if args.fallback:
            from repro.resilience import FallbackPolicy, reduce_with_fallback

            policy = FallbackPolicy(
                deadline_s=args.deadline, max_units=args.max_units
            )
            outcome = reduce_with_fallback(machine, policy)
            _runlog_note(rung=outcome.rung)
            print(
                "fallback ladder served rung %r (%s) after %d attempt(s)"
                % (outcome.rung, outcome.marker, len(outcome.attempts))
            )
            for attempt in outcome.attempts:
                if attempt.failed:
                    print(
                        "  %s: %s failed (%s)"
                        % (attempt.rung, attempt.detail, attempt.error_type)
                    )
            if outcome.reduction is not None:
                print(outcome.reduction.summary())
            served = outcome.machine
            certificate = outcome.certificate
        elif args.cache:
            from repro.resilience import cached_reduce

            cached = cached_reduce(
                machine,
                objective=args.objective,
                word_cycles=args.word_cycles,
                cache_dir=args.cache,
                paranoid=args.paranoid,
            )
            _runlog_note(rung="cache:%s" % cached.source)
            if cached.reduction is not None:
                print(cached.reduction.summary())
            detail = "verified via %s" % cached.verification
            if cached.verify_units:
                detail += ", %d work units" % cached.verify_units
            print(
                "reduction cache: %s (digest %s, %s)"
                % (cached.source, cached.digest[:16], detail)
            )
            served = cached.reduced
            certificate = cached.certificate
        else:
            reduction = reduce_machine(
                machine,
                objective=args.objective,
                word_cycles=args.word_cycles,
                budget=_make_budget(args, "reduce"),
            )
            print(reduction.summary())
            served = reduction.reduced
            if args.certificate:
                from repro.core.certificate import issue_certificate

                certificate = issue_certificate(reduction)
        if args.output:
            from repro.resilience import artifacts

            artifacts.write_machine(args.output, served)
            print(
                "wrote %s (+ checksum sidecar %s)"
                % (args.output, artifacts.sidecar_path(args.output))
            )
        if args.certificate:
            from repro.resilience import artifacts

            if certificate is None:
                raise ReproError(
                    "no certificate available to write (the served"
                    " description was not verified)"
                )
            artifacts.write_certificate(args.certificate, certificate)
            print(
                "wrote certificate %s (%d instances, %d classes)"
                % (
                    args.certificate,
                    len(certificate.witnesses),
                    len(certificate.classes),
                )
            )
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    first = _load_machine(args.first)
    second = _load_machine(args.second)
    mismatches = differences(first, second)
    if not mismatches:
        print(
            "EQUIVALENT: %r and %r preserve the same scheduling constraints"
            % (first.name, second.name)
        )
        return 0
    print("NOT EQUIVALENT: %d differing operation pairs" % len(mismatches))
    for op_x, op_y, only_first, only_second in mismatches[: args.limit]:
        print(
            "  %s / %s: only-first=%s only-second=%s"
            % (op_x, op_y, sorted(only_first), sorted(only_second))
        )
    return 1


def _cmd_certify(args: argparse.Namespace) -> int:
    from repro.core.certificate import (
        certificate_from_machines,
        check_certificate,
        equivalence_work_units,
    )
    from repro.core.verify import assert_equivalent
    from repro.errors import (
        CertificateError,
        EquivalenceError,
        render_mismatches,
    )
    from repro.resilience import artifacts

    original = _load_machine(args.original)
    reduced = _load_machine(args.reduced)
    _runlog_note(
        machine=original.name, workload="certify:%s" % reduced.name
    )
    document = {
        "schema": "repro-certify-report",
        "version": 1,
        "original": original.name,
        "reduced": reduced.name,
        "ok": False,
    }

    def emit(error=None):
        if error is not None:
            document["error"] = error
        if args.format == "json":
            print(json.dumps(document, indent=2, sort_keys=True))

    try:
        if args.cert:
            certificate = artifacts.load_certificate(args.cert)
            source = args.cert
        else:
            certificate = certificate_from_machines(original, reduced)
            source = "issued"
        check = check_certificate(
            certificate, original, reduced,
            recompute_matrix=not args.structural,
        )
        if args.paranoid:
            assert_equivalent(original, reduced)
    except EquivalenceError as exc:
        emit({"kind": "equivalence", "message": str(exc)})
        if args.format != "json":
            print("NOT CERTIFIED: %s" % exc, file=sys.stderr)
            if exc.mismatches:
                print(
                    "  witness pairs: %s"
                    % render_mismatches(exc.mismatches),
                    file=sys.stderr,
                )
        return 1
    except CertificateError as exc:
        error = {"kind": exc.kind or "certificate", "message": str(exc)}
        if exc.instance is not None:
            error["instance"] = list(exc.instance)
        emit(error)
        if args.format != "json":
            print("CERTIFICATE REJECTED: %s" % exc, file=sys.stderr)
        return 1

    # Certificate-check work is denominated in the ``check`` currency
    # (usage-touch units, same as the paper's Table 6 rows).
    _runlog_units({"check": check.units})
    document.update(
        ok=True,
        mode="paranoid" if args.paranoid else check.mode,
        instances=check.instances,
        classes=check.classes,
        units=check.units,
        equivalence_units=equivalence_work_units(original, reduced),
        matrix_digest=certificate.matrix_digest,
        certificate=source,
    )
    if args.emit:
        artifacts.write_certificate(args.emit, certificate)
        document["emitted"] = args.emit
    emit()
    if args.format != "json":
        print(
            "CERTIFIED (%s): %r preserves the scheduling constraints of"
            " %r" % (document["mode"], reduced.name, original.name)
        )
        print(
            "  %d instances in %d classes; check spent %d work units"
            " (full equivalence re-check costs %d)"
            % (
                check.instances, check.classes, check.units,
                document["equivalence_units"],
            )
        )
        if args.emit:
            print(
                "  wrote certificate %s (+ checksum sidecar %s)"
                % (args.emit, artifacts.sidecar_path(args.emit))
            )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    machine = _load_machine(args.machine)
    matrix = ForbiddenLatencyMatrix.from_machine(machine)
    stats = describe(machine, word_cycles=tuple(args.word_cycles))
    print("machine:                %s" % machine.name)
    print("operations:             %d" % machine.num_operations)
    print("operation classes:      %d" % len(matrix.operation_classes()))
    print("resources:              %d" % stats.num_resources)
    print("total usages:           %d" % machine.total_usages)
    print("avg usages/op:          %.1f" % stats.avg_usages_per_op)
    print("forbidden latencies:    %d (max %d)" % (
        matrix.instance_count, matrix.max_latency))
    for k in args.word_cycles:
        print(
            "avg %d-cycle-word uses:  %.1f" % (k, stats.avg_word_usages[k])
        )
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    machine = _load_machine(args.machine)
    sys.stdout.write(mdl.dumps(machine))
    return 0


def _cmd_schedule(args: argparse.Namespace) -> int:
    machine = _load_machine(args.machine)
    if args.representation is None:
        args.representation = "batch" if args.corpus else "discrete"
    if args.corpus:
        return _cmd_schedule_corpus(args, machine)
    scheduler = IterativeModuloScheduler(
        machine,
        representation=args.representation,
        word_cycles=args.word_cycles,
    )
    if args.kernel:
        graphs = [KERNELS[args.kernel]()]
    else:
        graphs = loop_suite(args.loops)
    optimal = 0
    _runlog_note(
        machine=machine.name,
        workload=args.kernel or ("suite[%d]" % args.loops),
        representation=args.representation,
        rung="full",
    )
    with _observing(args) as tracer:
        if tracer is not None:
            tracer.meta.update(
                command="schedule", machine=machine.name,
                representation=args.representation,
                kernel=args.kernel or ("suite[%d]" % args.loops),
            )
        if args.fallback:
            from repro.resilience import FallbackPolicy, schedule_with_fallback

            policy = FallbackPolicy(
                deadline_s=args.deadline, max_units=args.max_units
            )
            print(
                "%-22s %4s %4s %4s %-6s"
                % ("loop", "ops", "MII", "II", "rung")
            )
            rungs = set()
            for graph in graphs:
                outcome = schedule_with_fallback(
                    machine,
                    graph,
                    policy,
                    representation=args.representation,
                    word_cycles=args.word_cycles,
                )
                optimal += outcome.ii == outcome.mii
                rungs.add(outcome.rung)
                _runlog_quality(
                    loops=1,
                    loops_at_mii=int(outcome.ii == outcome.mii),
                    ii_total=outcome.ii,
                    mii_total=outcome.mii,
                )
                print(
                    "%-22s %4d %4d %4d %-6s"
                    % (
                        graph.name,
                        graph.num_operations,
                        outcome.mii,
                        outcome.ii,
                        outcome.rung,
                    )
                )
            _runlog_note(rung=",".join(sorted(rungs)) or "full")
        else:
            print(
                "%-22s %4s %4s %4s %8s"
                % ("loop", "ops", "MII", "II", "dec/op")
            )
            for graph in graphs:
                result = scheduler.schedule(
                    graph, budget=_make_budget(args, "schedule:" + graph.name)
                )
                optimal += result.optimal
                _runlog_quality(
                    loops=1,
                    loops_at_mii=int(result.optimal),
                    ii_total=result.ii,
                    mii_total=result.mii,
                )
                print(
                    "%-22s %4d %4d %4d %8.2f"
                    % (
                        graph.name,
                        graph.num_operations,
                        result.mii,
                        result.ii,
                        result.decisions_per_op,
                    )
                )
        print(
            "\n%d/%d loops scheduled at MII (%.1f%%)"
            % (optimal, len(graphs), 100.0 * optimal / len(graphs))
        )
        if args.explain:
            _write_explain_report(machine, graphs, args, args.explain)
    return 0


def _cmd_schedule_corpus(args: argparse.Namespace, machine) -> int:
    """``repro schedule --corpus``: the whole suite in one pass."""
    from repro.scheduler.corpus import CorpusScheduler

    if args.kernel:
        graphs = [KERNELS[args.kernel]()]
    else:
        graphs = loop_suite(args.loops)
    policy = None
    budget = None
    if args.fallback:
        from repro.resilience import FallbackPolicy

        policy = FallbackPolicy(
            deadline_s=args.deadline, max_units=args.max_units
        )
    else:
        budget = _make_budget(args, "schedule:corpus")
    scheduler = CorpusScheduler(
        machine,
        representation=args.representation,
        word_cycles=args.word_cycles,
        policy=policy,
        processes=args.processes,
    )
    _runlog_note(
        machine=machine.name,
        workload=args.kernel or ("suite[%d]" % args.loops),
        representation=args.representation,
        rung="corpus",
    )
    with _observing(args) as tracer:
        if tracer is not None:
            tracer.meta.update(
                command="schedule", machine=machine.name,
                representation=args.representation,
                kernel=args.kernel or ("suite[%d]" % args.loops),
            )
        result = scheduler.schedule_suite(graphs, budget=budget)
        print(
            "%-22s %4s %4s %4s %-6s"
            % ("loop", "ops", "MII", "II", "rung")
        )
        optimal = 0
        for outcome in result.outcomes:
            if outcome.failed:
                print(
                    "%-22s %4d %4s %4s %-6s"
                    % (outcome.name, outcome.ops, "-", "-",
                       outcome.error_type)
                )
                continue
            optimal += outcome.ii == outcome.mii
            _runlog_quality(
                loops=1,
                loops_at_mii=int(outcome.ii == outcome.mii),
                ii_total=outcome.ii,
                mii_total=outcome.mii,
            )
            print(
                "%-22s %4d %4d %4d %-6s"
                % (outcome.name, outcome.ops, outcome.mii,
                   outcome.ii, outcome.rung)
            )
        print(
            "\ncorpus: %d scheduled, %d degraded, %d failed of %d loops"
            " (%d at MII)"
            % (result.scheduled, result.degraded, result.failed,
               len(result.outcomes), optimal)
        )
        if result.backend is not None:
            print(
                "batch plane: %s backend, %d batch units,"
                " %d compile units"
                % (result.backend, result.work.units["batch"],
                   result.work.units["compile"])
            )
    _runlog_work(result.work)
    return 1 if result.failed else 0


def _write_explain_report(machine, graphs, args, path: str) -> None:
    """Build and write a ``repro-explain-report`` v1 JSON artifact."""
    from repro.analysis import build_explain_report
    from repro.resilience import artifacts

    report = build_explain_report(
        machine,
        graphs,
        representation=args.representation,
        word_cycles=args.word_cycles,
    )
    artifacts.write_json(path, report, kind="explain")
    print("wrote explain report %s" % path, file=sys.stderr)


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro.analysis import (
        build_explain_report,
        render_explain_html,
        render_explain_text,
    )

    from repro.workloads import port_graph

    machine = _load_machine(args.machine)
    if args.kernel:
        graphs = [KERNELS[args.kernel]()]
    else:
        graphs = loop_suite(args.loops)
    # The suite speaks the Cydra vocabulary; port it onto machines with
    # a registered opcode map (playdoh, alpha, mips) so every study
    # machine can be explained.
    graphs = [port_graph(graph, machine) for graph in graphs]
    _runlog_note(
        machine=machine.name,
        workload=args.kernel or ("suite[%d]" % args.loops),
        representation=args.representation,
    )
    with _observing(args) as tracer:
        if tracer is not None:
            tracer.meta.update(
                command="explain", machine=machine.name,
                representation=args.representation,
                kernel=args.kernel or ("suite[%d]" % args.loops),
            )
        report = build_explain_report(
            machine,
            graphs,
            representation=args.representation,
            word_cycles=args.word_cycles,
        )
        if args.format == "json":
            if args.out:
                from repro.resilience import artifacts

                artifacts.write_json(args.out, report, kind="explain")
                print("wrote explain report %s" % args.out, file=sys.stderr)
            else:
                json.dump(report, sys.stdout, indent=2, sort_keys=True)
                sys.stdout.write("\n")
        else:
            render = (
                render_explain_html if args.format == "html"
                else render_explain_text
            )
            text = render(report, machine)
            if args.out:
                from repro._atomic import atomic_write_text

                try:
                    atomic_write_text(args.out, text + "\n")
                except OSError as exc:
                    raise ReproError(
                        "cannot write explain file %r: %s" % (args.out, exc)
                    )
                print("wrote %s" % args.out, file=sys.stderr)
            else:
                print(text)
    _runlog_note(failed=report["summary"]["failed"])
    return 0 if report["summary"]["failed"] == 0 else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.resilience import artifacts, run_chaos

    machine = _load_machine(args.machine)
    _runlog_note(machine=machine.name, seed=args.seed)
    with _observing(args) as tracer:
        if tracer is not None:
            tracer.meta.update(
                command="chaos", machine=machine.name, seed=args.seed
            )
        report = run_chaos(
            machine,
            seed=args.seed,
            faults=args.faults,
            workdir=args.workdir,
            budget=_make_budget(args, "chaos"),
        )
        print(report.render_text())
        if args.out:
            header = artifacts.write_json(
                args.out, report.to_dict(), kind="chaos"
            )
            # Read the artifact straight back: a chaos run that cannot
            # round-trip its own report through the checksummed store is
            # itself a resilience failure.
            artifacts.verify_artifact(args.out)
            print(
                "wrote %s (sha256 %s)" % (args.out, header["sha256"]),
                file=sys.stderr,
            )
    _runlog_note(
        faults=len(report.outcomes),
        unhandled=sum(1 for r in report.outcomes if not r.handled),
    )
    # Exit-code contract: 0 = every fault handled, 1 = any unhandled
    # fault, 3 = budget exceeded (raised through main()'s handler).
    return 0 if report.ok else 1


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.fuzz import run_campaign
    from repro.resilience import artifacts

    with _observing(args) as tracer:
        if tracer is not None:
            tracer.meta.update(
                command="fuzz", seed=args.seed, profile=args.profile
            )
        report = run_campaign(
            seed=args.seed,
            runs=args.runs,
            profile=args.profile,
            max_units=args.budget,
            do_shrink=args.shrink,
            bundle_dir=args.bundles,
            plans_every=args.plans_every,
        )
        counts = report["counts"]
        _runlog_note(
            workload="fuzz[%d]" % args.runs,
            seed=args.seed,
            fuzz_profile=args.profile,
            ok_runs=counts["ok"],
            handled_runs=counts["handled"],
            bug_runs=counts["bug"],
        )
        print(
            "fuzz campaign seed=%d profile=%s: %d runs"
            % (args.seed, args.profile, args.runs)
        )
        print(
            "  ok=%d handled=%d bug=%d plans=%d"
            % (
                counts["ok"], counts["handled"], counts["bug"],
                len(report["plans"]),
            )
        )
        for bug in report["bugs"]:
            print(
                "  BUG run=%d seed=%d %s (%s)"
                % (
                    bug["run"], bug["seed"], bug["fingerprint"],
                    bug["stage"],
                )
            )
        for manifest in report["bundles"]:
            print("  repro bundle: %s" % manifest["directory"])
        if args.out:
            artifacts.write_json(args.out, report, kind="fuzz")
            artifacts.verify_artifact(args.out)
            print("wrote %s" % args.out, file=sys.stderr)
    return 0 if report["ok"] else 1


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis import describe_machine, describe_reduction

    machine = _load_machine(args.machine)
    print(describe_machine(machine))
    if args.reduce:
        print()
        print(
            describe_reduction(
                reduce_machine(
                    machine,
                    objective=args.objective,
                    word_cycles=args.word_cycles,
                )
            )
        )
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    from repro.analysis import diff_constraints
    from repro.core import find_witness

    first = _load_machine(args.first)
    second = _load_machine(args.second)
    text = diff_constraints(first, second, limit=args.limit)
    print(text)
    if text.startswith("EQUIVALENT"):
        return 0
    witness = find_witness(first, second)
    if witness is not None:
        print("witness: " + witness.describe())
    return 1


def _cmd_expand(args: argparse.Namespace) -> int:
    from repro.scheduler import expand

    machine = _load_machine(args.machine)
    scheduler = IterativeModuloScheduler(machine)
    graph = KERNELS[args.kernel]()
    result = scheduler.schedule(graph)
    expanded = expand(result, iterations=args.iterations)
    print(
        "%s on %s: II=%d (MII=%d), %d stages"
        % (graph.name, machine.name, result.ii, result.mii,
           expanded.num_stages)
    )
    print()
    print(expanded.render_kernel())
    print()
    print("timeline (%d iterations):" % args.iterations)
    print(expanded.render_timeline(limit=args.limit))
    return 0


def _cmd_automata(args: argparse.Namespace) -> int:
    from repro.automata import (
        AutomatonTooLarge,
        FactoredAutomata,
        PipelineAutomaton,
    )

    from repro.obs import trace as obs_trace

    machine = _load_machine(args.machine)
    with _observing(args) as tracer:
        if tracer is not None:
            tracer.meta.update(
                command="automata", machine=machine.name, factor=args.factor
            )
        try:
            with obs_trace.span(
                "build_monolithic", obs_trace.CAT_AUTOMATA,
                machine=machine.name,
            ):
                monolithic = PipelineAutomaton.build(
                    machine, max_states=args.max_states
                )
            print(
                "monolithic automaton: %d states, %d transitions (~%d KiB)"
                % (
                    monolithic.num_states,
                    monolithic.num_transitions,
                    monolithic.memory_bytes() // 1024,
                )
            )
        except AutomatonTooLarge:
            print(
                "monolithic automaton: exceeds %d states" % args.max_states
            )
        try:
            with obs_trace.span(
                "build_factored", obs_trace.CAT_AUTOMATA,
                machine=machine.name, mode=args.factor,
            ):
                factored = FactoredAutomata.build(
                    machine, mode=args.factor, max_states=args.max_states
                )
            print(
                "%s-factored automata: %d factors, %d total states "
                "(largest %d, ~%d KiB)"
                % (
                    args.factor,
                    factored.num_factors,
                    factored.num_states,
                    factored.max_factor_states,
                    factored.memory_bytes() // 1024,
                )
            )
        except AutomatonTooLarge:
            print(
                "%s-factored automata: a factor exceeds %d states"
                % (args.factor, args.max_states)
            )
        print(
            "reduced bitvector alternative: %d reserved bits per cycle"
            % reduce_machine(machine).reduced.num_resources
        )
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro import obs
    from repro.obs.profile import profile_machine

    machine = _load_machine(args.machine)
    _runlog_note(
        machine=machine.name,
        workload=args.kernel or ("suite[%d]" % args.loops),
        representation=args.representation,
    )
    # Per-query spans are only worth recording when a per-span export
    # (Chrome trace or flamegraph) is requested.
    tracer = obs.Tracer(
        trace_queries=bool(args.trace or args.flamegraph)
    )
    sampler = None
    if args.sample:
        from repro.obs.sampler import StackSampler

        sampler = StackSampler(
            interval_s=args.sample_interval, tracer=tracer
        ).start()
    try:
        profile_machine(
            machine,
            kernel=args.kernel,
            loops=args.loops,
            representation=args.representation,
            word_cycles=args.word_cycles,
            objective=args.objective,
            schedule_reduced=args.reduced,
            tracer=tracer,
            reduction_cache=args.reduction_cache,
        )
    finally:
        if sampler is not None:
            sampler.stop()
    _runlog_harvest(tracer)
    if sampler is not None:
        print(
            "sampler: %d stacks captured at %.1fms intervals"
            % (sampler.samples, sampler.interval_s * 1e3),
            file=sys.stderr,
        )
    if args.metrics != "-" and args.flamegraph != "-":
        # With ``--metrics -``/``--flamegraph -`` stdout carries the
        # export alone.
        print(obs.render_text(tracer))
    if args.metrics:
        _write_export(obs.write_metrics, tracer, args.metrics, "metrics")
        if args.metrics != "-":
            print("wrote metrics %s" % args.metrics, file=sys.stderr)
    if args.trace:
        _write_export(obs.write_chrome_trace, tracer, args.trace, "trace")
        print(
            "wrote trace %s (open in https://ui.perfetto.dev)" % args.trace,
            file=sys.stderr,
        )
    if args.flamegraph:
        lines = obs.collapsed_stack_lines(tracer)
        if sampler is not None:
            # Sampled stacks (weighted in estimated microseconds, rooted
            # under "sampler") merge into the same collapsed file as the
            # instrumented spans — one flamegraph, two vantage points.
            lines.extend(sampler.collapsed_lines())
        text = "\n".join(lines) + "\n" if lines else ""
        if args.flamegraph == "-":
            sys.stdout.write(text)
        else:
            from repro._atomic import atomic_write_text

            try:
                atomic_write_text(args.flamegraph, text)
            except OSError as exc:
                raise ReproError(
                    "cannot write flamegraph file %r: %s"
                    % (args.flamegraph, exc)
                )
        if args.flamegraph != "-":
            print(
                "wrote collapsed stacks %s (flamegraph.pl / speedscope"
                " / inferno)" % args.flamegraph,
                file=sys.stderr,
            )
    return 0


def _bench_machines(args: argparse.Namespace):
    """Resolve the ``bench run`` machine list to (name, machine) pairs."""
    from repro.bench import runner

    if args.machines:
        names = list(args.machines)
    elif args.quick:
        names = list(runner.QUICK_MACHINES)
    else:
        names = list(runner.DEFAULT_MACHINES)
    return [(name, _load_machine(name)) for name in names]


def _cmd_bench_run(args: argparse.Namespace) -> int:
    from repro.bench import render_result_text, save_result
    from repro.bench import runner

    from repro.query import REPRESENTATIONS

    machines = _bench_machines(args)
    representations = [
        r.strip() for r in args.representations.split(",") if r.strip()
    ]
    for representation in representations:
        if representation not in REPRESENTATIONS:
            raise ReproError(
                "unknown representation %r (choose from %s)"
                % (representation, ", ".join(REPRESENTATIONS))
            )
    loops = args.loops or (
        runner.QUICK_LOOPS if args.quick else runner.DEFAULT_LOOPS
    )
    repetitions = args.repetitions or (
        runner.QUICK_REPETITIONS if args.quick else runner.DEFAULT_REPETITIONS
    )
    corpus_loops = args.corpus_loops
    if corpus_loops is None:
        corpus_loops = (
            runner.QUICK_CORPUS_LOOPS if args.quick
            else runner.DEFAULT_CORPUS_LOOPS
        )
    result = runner.run_benchmark(
        machines,
        representations=representations,
        loops=loops,
        repetitions=repetitions,
        schedule_reduced=args.reduced,
        budget=_make_budget(args, "bench"),
        label=args.label,
        quick=args.quick,
        case_filter=args.filter,
        corpus_loops=corpus_loops,
    )
    _runlog_note(
        machine=",".join(name for name, _ in machines),
        workload="bench[%d cases]" % len(result.cases),
        representation=args.representations,
    )
    for case in result.cases.values():
        units = {}
        for key, value in case.work.items():
            # Case work keys are "query.<currency>.units"; the registry
            # stores bare currency names.
            if key.startswith("query.") and key.endswith(".units"):
                units[key[len("query."):-len(".units")]] = value
        _runlog_units(units)
        _runlog_quality(**{
            key: case.quality[key]
            for key in ("loops", "loops_at_mii", "ii_total", "mii_total")
            if key in case.quality
        })
    if args.format == "json":
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    else:
        print(render_result_text(result))
    if args.output:
        save_result(args.output, result)
        print("wrote %s (+ checksum sidecar)" % args.output,
              file=sys.stderr)
    return 0


def _cmd_bench_compare(args: argparse.Namespace) -> int:
    from repro.bench import (
        CompareConfig,
        compare_results,
        load_result,
        render_comparison_text,
    )
    from repro.resilience import artifacts

    base = load_result(args.base)
    new = load_result(args.new)
    config = CompareConfig(
        work_ratio=args.work_ratio,
        quality_ratio=args.quality_ratio,
        gate_wall=args.gate_wall,
        min_units=args.min_units,
    )
    comparison = compare_results(base, new, config)
    if args.format == "json":
        print(json.dumps(comparison.to_dict(), indent=2, sort_keys=True))
    else:
        print(
            render_comparison_text(
                comparison, base, new, top=args.top, verbose=args.verbose
            )
        )
    if args.output:
        artifacts.write_json(
            args.output, comparison.to_dict(), kind="bench-compare"
        )
        print("wrote %s (+ checksum sidecar)" % args.output,
              file=sys.stderr)
    return 0 if comparison.ok else 1


def _cmd_bench_report(args: argparse.Namespace) -> int:
    from repro.bench import load_result, render_result_text

    result = load_result(args.result)
    if args.format == "json":
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    else:
        print(render_result_text(result))
    return 0


def _runs_log(args: argparse.Namespace):
    """Open the registry named by ``--runlog`` / ``REPRO_RUNLOG``."""
    from repro.obs.runlog import ENV_RUNLOG, RunLog

    directory = args.runlog or os.environ.get(ENV_RUNLOG)
    if not directory:
        raise ReproError(
            "no run registry: pass --runlog DIR or set REPRO_RUNLOG"
        )
    if not os.path.isdir(directory):
        raise ReproError("run registry %r does not exist" % directory)
    return RunLog(directory)


def _cmd_runs_list(args: argparse.Namespace) -> int:
    log = _runs_log(args)
    records = log.records()
    if args.tail:
        records = records[-args.tail:]
    if args.format == "json":
        print(json.dumps(
            [
                record.data if not record.corrupt
                else {"seq": record.seq, "corrupt": True,
                      "error": record.error}
                for record in records
            ],
            indent=2, sort_keys=True,
        ))
        return 0
    print(
        "%6s  %-10s %-8s %4s %9s %12s  %s"
        % ("seq", "command", "outcome", "exit", "dur s", "units", "what")
    )
    for record in records:
        if record.corrupt:
            print(
                "%6d  CORRUPT: %s" % (record.seq, record.error)
            )
            continue
        what = str(
            record.data.get("machine", record.data.get("workload", ""))
        )
        workload = record.data.get("workload")
        if workload and workload != what:
            what = "%s %s" % (what, workload)
        print(
            "%6d  %-10s %-8s %4s %9.3f %12d  %s"
            % (
                record.seq,
                record.command,
                record.outcome,
                record.data.get("exit_code", "?"),
                float(record.data.get("duration_s", 0.0)),
                int(sum(record.units().values())),
                what,
            )
        )
    corrupt = sum(1 for record in records if record.corrupt)
    print(
        "\n%d record(s)%s in %s"
        % (
            len(records),
            " (%d corrupt)" % corrupt if corrupt else "",
            log.directory,
        )
    )
    return 1 if corrupt else 0


def _cmd_runs_show(args: argparse.Namespace) -> int:
    record = _runs_log(args).get(args.seq)
    if record.corrupt:
        print(
            "record %d is corrupt: %s" % (record.seq, record.error),
            file=sys.stderr,
        )
        if record.data:
            print(json.dumps(record.data, indent=2, sort_keys=True))
        return 1
    print(json.dumps(record.data, indent=2, sort_keys=True))
    return 0


def _cmd_runs_diff(args: argparse.Namespace) -> int:
    from repro.bench import CompareConfig, compare_metric_maps
    from repro.errors import RunlogError

    log = _runs_log(args)
    base = log.get(args.base)
    new = log.get(args.new)
    for which, record in (("base", base), ("candidate", new)):
        if record.corrupt:
            raise RunlogError(
                "%s record %d is corrupt: %s"
                % (which, record.seq, record.error),
                path=record.path,
            )
    config = CompareConfig(
        work_ratio=args.work_ratio,
        quality_ratio=args.quality_ratio,
        min_units=args.min_units,
    )
    case_key = "runs %d..%d" % (base.seq, new.seq)
    comparison = compare_metric_maps(
        case_key,
        {"units." + k: v for k, v in base.units().items()},
        {"units." + k: v for k, v in new.units().items()},
        base_quality=base.quality(),
        new_quality=new.quality(),
        config=config,
    )
    if args.format == "json":
        print(json.dumps(comparison.to_dict(), indent=2, sort_keys=True))
        return 0 if comparison.ok else 1
    print(
        "diff %s: base seq %d (%s) vs candidate seq %d (%s)"
        % (case_key, base.seq, base.command, new.seq, new.command)
    )
    for note in comparison.notes:
        print("  note: %s" % note)
    for delta in comparison.deltas:
        ratio = delta.ratio
        print(
            "  %-28s %12s -> %-12s %-8s %-12s%s"
            % (
                delta.metric,
                "-" if delta.base is None else "%g" % delta.base,
                "-" if delta.new is None else "%g" % delta.new,
                "x%.4f" % ratio if ratio is not None else "",
                delta.classification,
                " [gated]" if delta.gated else "",
            )
        )
    print("verdict: %s" % ("ok" if comparison.ok else "REGRESSION"))
    return 0 if comparison.ok else 1


def _cmd_runs_trend(args: argparse.Namespace) -> int:
    from repro.obs.runlog import detect_changepoint

    log = _runs_log(args)
    points = log.series(args.metric, window=args.window)
    if len(points) < 4:
        print(
            "trend %s: %d point(s) — need at least 4 to test for a"
            " changepoint" % (args.metric, len(points))
        )
        return 0
    changepoint = detect_changepoint(
        points,
        args.metric,
        seed=args.seed,
        permutations=args.permutations,
        alpha=args.alpha,
        min_ratio=args.min_ratio,
        bigger_is_better=args.metric.endswith("loops_at_mii"),
    )
    values = [value for _seq, value in points]
    print(
        "trend %s: %d points (seq %d..%d), mean %.3f"
        % (
            args.metric, len(points), points[0][0], points[-1][0],
            sum(values) / len(values),
        )
    )
    if changepoint is None:
        print("no significant changepoint")
        return 0
    print(
        "%s at seq %d: mean %.3f -> %.3f (x%.4f), score %.3f,"
        " p=%.4f (seeded permutation test, seed=%d)"
        % (
            changepoint.direction.upper(),
            changepoint.seq,
            changepoint.before,
            changepoint.after,
            changepoint.ratio if changepoint.ratio is not None else 0.0,
            changepoint.score,
            changepoint.p_value,
            args.seed,
        )
    )
    if args.format == "json":
        print(json.dumps(changepoint.to_dict(), indent=2, sort_keys=True))
    return 1 if changepoint.direction == "regression" else 0


def _cmd_runs_gc(args: argparse.Namespace) -> int:
    log = _runs_log(args)
    removed = log.gc(keep=args.keep, prune_corrupt=args.prune_corrupt)
    remaining = len(log.records())
    print(
        "removed %d record(s), %d remaining in %s"
        % (len(removed), remaining, log.directory)
    )
    return 0


def _cmd_runs_metrics(args: argparse.Namespace) -> int:
    from repro.obs.openmetrics import (
        metrics_to_openmetrics,
        runlog_to_openmetrics,
        write_openmetrics,
    )

    if args.from_metrics:
        try:
            with open(args.from_metrics, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, ValueError) as exc:
            raise ReproError(
                "cannot read metrics JSON %r: %s" % (args.from_metrics, exc)
            )
        text = metrics_to_openmetrics(document)
    else:
        log = _runs_log(args)
        text = runlog_to_openmetrics(log.tail(args.tail))
    try:
        write_openmetrics(text, args.out)
    except OSError as exc:
        raise ReproError(
            "cannot write OpenMetrics file %r: %s" % (args.out, exc)
        )
    if args.out != "-":
        print("wrote OpenMetrics exposition %s" % args.out,
              file=sys.stderr)
    return 0


def _load_machine_with_raw(
    ref: str,
) -> Tuple[Optional[MachineDescription], Optional["mdl.RawMachine"]]:
    """Load ``ref`` keeping the raw parse when it names an MDL file.

    Built-ins return ``(machine, None)``.  Files return ``(None, raw)``
    so the linter can attach real source lines and can still audit files
    that fail semantic validation.
    """
    if ref in _BUILTINS:
        return _BUILTINS[ref](), None
    if os.sep in ref or ref.endswith(".mdl") or os.path.exists(ref):
        try:
            return None, mdl.parse_file(ref)
        except (OSError, UnicodeDecodeError) as exc:
            raise ReproError(
                "cannot read machine file %r: %s" % (ref, exc)
            ) from exc
    raise ReproError(
        "unknown machine %r: not a built-in machine and not an existing"
        " MDL file (built-ins: %s)" % (ref, ", ".join(sorted(_BUILTINS)))
    )


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint import (
        Baseline,
        lint_machine,
        lint_source,
        registered_rules,
        write_baseline,
    )

    if args.list_rules:
        if args.format == "json":
            print(
                json.dumps(
                    [
                        {
                            "id": lint_rule.id,
                            "severity": lint_rule.severity,
                            "summary": lint_rule.summary,
                        }
                        for lint_rule in registered_rules()
                    ],
                    indent=2,
                )
            )
        else:
            for lint_rule in registered_rules():
                print(
                    "%-24s %-8s %s"
                    % (lint_rule.id, lint_rule.severity, lint_rule.summary)
                )
        return 0
    if not args.machine and not args.code:
        raise ReproError("lint needs a machine (or --code / --list-rules)")

    baseline = Baseline.load(args.baseline) if args.baseline else None
    severity_overrides = {}
    for override in args.severity or []:
        rule_id, eq, severity = override.partition("=")
        if not eq:
            raise ReproError(
                "--severity takes RULE=LEVEL, got %r" % override
            )
        severity_overrides[rule_id] = severity
    rules = None
    if args.rules:
        rules = [r.strip() for r in args.rules.split(",") if r.strip()]
    options = {
        "max_cycle": args.max_cycle,
        "mismatch_limit": args.mismatch_limit,
    }

    if args.code:
        from repro.lint.code import lint_code_paths

        if args.against:
            raise ReproError("--against does not apply to lint --code")
        report = lint_code_paths(
            paths=args.machine or None,
            rules=rules,
            severity_overrides=severity_overrides,
            baseline=baseline,
            options=options,
        )
    else:
        if len(args.machine) > 1:
            raise ReproError(
                "lint audits one machine at a time"
                " (multiple paths are a --code feature)"
            )
        reference = (
            _load_machine(args.against) if args.against else None
        )
        machine, raw = _load_machine_with_raw(args.machine[0])
        kwargs = dict(
            against=reference,
            rules=rules,
            severity_overrides=severity_overrides,
            baseline=baseline,
            options=options,
        )
        if raw is not None:
            report = lint_source(raw, **kwargs)
        else:
            report = lint_machine(machine, **kwargs)

    if args.write_baseline:
        write_baseline(args.write_baseline, [report])
        print(
            "wrote %d suppression(s) to %s"
            % (len(report.diagnostics), args.write_baseline),
            file=sys.stderr,
        )

    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render_text(show_info=args.show_info))
    return 1 if report.exceeds(args.fail_on) else 0


def _cmd_table(args: argparse.Namespace) -> int:
    from repro.stats import render_reduction_table

    machine = _load_machine(args.machine)
    reductions = {"res-uses": reduce_machine(machine)}
    for k in args.word_cycles:
        reductions["%d-cycle-word" % k] = reduce_machine(
            machine, objective="word-uses", word_cycles=k
        )
    print(
        render_reduction_table(
            "Machine description metrics: %s" % machine.name,
            machine,
            reductions,
            word_cycles=tuple(args.word_cycles),
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reduced multipipeline machine descriptions "
        "(Eichenberger & Davidson, PLDI 1996)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("reduce", help="reduce a machine description")
    p.add_argument("machine", help="built-in name or MDL file")
    p.add_argument(
        "--objective",
        choices=("res-uses", "word-uses"),
        default="res-uses",
    )
    p.add_argument("--word-cycles", type=int, default=1)
    p.add_argument(
        "-o",
        "--output",
        help="write reduced machine as a checksummed MDL artifact",
    )
    p.add_argument(
        "--cache",
        metavar="DIR",
        help="digest-keyed reduction cache directory: repeats are served"
        " from verified checksummed artifacts (corrupt entries fall back"
        " to a fresh reduction and are rewritten)",
    )
    p.add_argument(
        "--certificate",
        metavar="FILE",
        help="write the reduction's preservation certificate as a"
        " checksummed artifact",
    )
    p.add_argument(
        "--paranoid",
        action="store_true",
        help="with --cache: re-prove disk hits with the full"
        " forbidden-matrix equivalence check instead of the certificate",
    )
    _add_observability_flags(p)
    _add_resilience_flags(p)
    _add_runlog_flag(p)
    p.set_defaults(func=_cmd_reduce)

    p = sub.add_parser("verify", help="compare two descriptions")
    p.add_argument("first")
    p.add_argument("second")
    p.add_argument("--limit", type=int, default=8)
    p.set_defaults(func=_cmd_verify)

    p = sub.add_parser(
        "certify",
        help="issue or check a preservation certificate",
        description="Prove that REDUCED preserves the scheduling"
        " constraints of ORIGINAL.  Without --cert, a certificate is"
        " issued (and optionally written with --emit); with --cert, the"
        " stored certificate artifact is validated independently —"
        " soundness and coverage of its Theorem-1 witness pairs plus a"
        " recomputation of the original's forbidden matrix.  Exits 1"
        " when certification fails.",
    )
    p.add_argument("original", help="built-in name or MDL file")
    p.add_argument("reduced", help="built-in name or MDL file")
    p.add_argument(
        "--cert",
        metavar="FILE",
        help="validate this certificate artifact instead of issuing",
    )
    p.add_argument(
        "--emit",
        metavar="FILE",
        help="write the certificate as a checksummed artifact",
    )
    p.add_argument(
        "--structural",
        action="store_true",
        help="skip recomputing the original's matrix (binding by"
        " canonical-MDL digest only — the warm-cache trust model)",
    )
    p.add_argument(
        "--paranoid",
        action="store_true",
        help="additionally run the full forbidden-matrix equivalence"
        " check",
    )
    p.add_argument(
        "--format", choices=("text", "json"), default="text"
    )
    _add_runlog_flag(p)
    p.set_defaults(func=_cmd_certify)

    p = sub.add_parser("stats", help="print description metrics")
    p.add_argument("machine")
    p.add_argument(
        "--word-cycles", type=int, nargs="+", default=[1, 2, 4]
    )
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser("show", help="dump a machine as MDL")
    p.add_argument("machine")
    p.set_defaults(func=_cmd_show)

    p = sub.add_parser(
        "table", help="render the Tables 1-4 metrics for a machine"
    )
    p.add_argument("machine")
    p.add_argument("--word-cycles", type=int, nargs="+", default=[1, 2, 4])
    p.set_defaults(func=_cmd_table)

    p = sub.add_parser("report", help="machine / reduction report")
    p.add_argument("machine")
    p.add_argument("--reduce", action="store_true")
    p.add_argument(
        "--objective", choices=("res-uses", "word-uses"), default="res-uses"
    )
    p.add_argument("--word-cycles", type=int, default=1)
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("diff", help="scheduling-constraint diff")
    p.add_argument("first")
    p.add_argument("second")
    p.add_argument("--limit", type=int, default=20)
    p.set_defaults(func=_cmd_diff)

    p = sub.add_parser("expand", help="print a software pipeline")
    p.add_argument("machine")
    p.add_argument("--kernel", choices=sorted(KERNELS), default="daxpy")
    p.add_argument("--iterations", type=int, default=4)
    p.add_argument("--limit", type=int, default=48)
    p.set_defaults(func=_cmd_expand)

    p = sub.add_parser("automata", help="automata size report")
    p.add_argument("machine")
    p.add_argument("--factor", choices=("unit", "resource"), default="unit")
    p.add_argument("--max-states", type=int, default=200_000)
    _add_observability_flags(p)
    p.set_defaults(func=_cmd_automata)

    p = sub.add_parser(
        "profile",
        help="reduce + schedule under tracing; time/work breakdown",
        description="Run the full pipeline (forbidden matrix, Algorithm 1,"
        " selection, Iterative Modulo Scheduling) with the observability"
        " layer active and print a per-phase time/work breakdown."
        " Optionally export metrics JSON and a Perfetto-loadable Chrome"
        " trace.",
    )
    p.add_argument("machine", help="built-in name or MDL file")
    p.add_argument(
        "--kernel",
        choices=sorted(KERNELS),
        help="profile one named kernel instead of the loop suite",
    )
    p.add_argument(
        "--loops",
        type=int,
        default=8,
        help="loop-suite size when no kernel is given (default: 8)",
    )
    p.add_argument(
        "--representation",
        choices=("discrete", "bitvector", "compiled"),
        default="discrete",
    )
    p.add_argument("--word-cycles", type=int, default=1)
    p.add_argument(
        "--objective", choices=("res-uses", "word-uses"), default="res-uses"
    )
    p.add_argument(
        "--reduced",
        action="store_true",
        help="schedule on the reduced description (paper's configuration)",
    )
    p.add_argument(
        "--reduction-cache",
        metavar="DIR",
        help="serve the reduction from a digest-keyed cache directory"
        " (entries are verified on load; corruption falls back to a"
        " fresh reduction)",
    )
    p.add_argument(
        "--flamegraph",
        metavar="FILE",
        help="write spans as collapsed stacks ('-' for stdout) for"
        " flamegraph.pl / speedscope / inferno",
    )
    p.add_argument(
        "--sample",
        action="store_true",
        help="run the background sampling stack profiler alongside the"
        " span tracer; sampled stacks merge into --flamegraph and charge"
        " the 'sample' work currency",
    )
    p.add_argument(
        "--sample-interval",
        type=float,
        default=0.005,
        metavar="SECONDS",
        help="sampling period for --sample (default: 0.005)",
    )
    _add_observability_flags(p)
    _add_runlog_flag(p)
    p.set_defaults(func=_cmd_profile)

    p = sub.add_parser(
        "bench",
        help="benchmark observatory: run / compare / report",
        description="Record schema-versioned benchmark results"
        " (deterministic work units, robust wall-time statistics,"
        " per-phase spans, schedule quality), compare a candidate run"
        " against a baseline with a noise-immune gate, and render stored"
        " results.  See docs/benchmarking.md.",
    )
    bench_sub = p.add_subparsers(dest="bench_command", required=True)

    b = bench_sub.add_parser(
        "run", help="run the benchmark matrix and record a result"
    )
    b.add_argument(
        "machines",
        nargs="*",
        help="machines to benchmark (default: example + cydra5-subset;"
        " --quick: example only)",
    )
    b.add_argument(
        "--quick",
        action="store_true",
        help="the CI configuration: small loop count, 3 repetitions",
    )
    b.add_argument(
        "--representations",
        default="discrete,bitvector,compiled",
        metavar="R[,R]",
        help="query representations to matrix over"
        " (default: discrete,bitvector,compiled)",
    )
    b.add_argument(
        "--filter",
        metavar="SUBSTRING",
        help="run only cases whose 'machine/representation' key contains"
        " SUBSTRING (e.g. 'cydra5-subset/' or '/compiled')",
    )
    b.add_argument(
        "--loops",
        type=int,
        help="loop-suite size per case (default: 8; --quick: 4)",
    )
    b.add_argument(
        "--corpus-loops",
        type=int,
        metavar="N",
        help="suite size for the corpus-batch/corpus-perloop cells"
        " (default: 24; --quick: 8; 0 skips them)",
    )
    b.add_argument(
        "--repetitions",
        type=int,
        help="wall-time repetitions per case (default: 5; --quick: 3)",
    )
    b.add_argument(
        "--reduced",
        action="store_true",
        help="schedule on the reduced description",
    )
    b.add_argument("--label", default="", help="free-form run label")
    b.add_argument(
        "-o",
        "--output",
        metavar="FILE",
        help="write the result as a checksummed JSON artifact",
    )
    b.add_argument("--format", choices=("text", "json"), default="text")
    b.add_argument(
        "--deadline", type=float, metavar="SECONDS",
        help="wall-clock budget for the whole run (exit 3 when exceeded)",
    )
    b.add_argument(
        "--max-units", type=int, metavar="N",
        help="work-unit budget for the whole run",
    )
    _add_runlog_flag(b)
    b.set_defaults(func=_cmd_bench_run)

    b = bench_sub.add_parser(
        "compare",
        help="gate a candidate result against a baseline (exit 1 on"
        " regression)",
    )
    b.add_argument("base", help="baseline result file")
    b.add_argument("new", help="candidate result file")
    b.add_argument(
        "--work-ratio",
        type=float,
        default=1.01,
        help="deterministic work counters fail beyond this ratio"
        " (default: 1.01)",
    )
    b.add_argument(
        "--quality-ratio",
        type=float,
        default=1.0,
        help="schedule-quality counters fail beyond this ratio"
        " (default: 1.0 — any II increase fails)",
    )
    b.add_argument(
        "--min-units",
        type=float,
        default=16.0,
        help="ignore work counters below this many units (default: 16)",
    )
    b.add_argument(
        "--gate-wall",
        action="store_true",
        help="let wall-time regressions (disjoint bootstrap intervals)"
        " fail the gate — only meaningful on identical hardware",
    )
    b.add_argument(
        "--top",
        type=int,
        default=5,
        help="phases per case in the differential profile (default: 5)",
    )
    b.add_argument(
        "--verbose",
        action="store_true",
        help="also list neutral / unclassified deltas",
    )
    b.add_argument(
        "-o",
        "--output",
        metavar="FILE",
        help="write the comparison report as a checksummed JSON artifact",
    )
    b.add_argument("--format", choices=("text", "json"), default="text")
    b.set_defaults(func=_cmd_bench_compare)

    b = bench_sub.add_parser(
        "report", help="render a stored benchmark result"
    )
    b.add_argument("result", help="result file written by bench run -o")
    b.add_argument("--format", choices=("text", "json"), default="text")
    b.set_defaults(func=_cmd_bench_report)

    p = sub.add_parser(
        "lint",
        help="static-analysis audit (machine plane or --code plane)",
        description="Audit a machine description for constraint-level"
        " defects: redundant or unused rows, collapsible operations,"
        " dominated alternatives, ill-formed cycles, and (with --against)"
        " forbidden-latency disagreement with a reference description."
        " With --code, audit Python sources instead: determinism"
        " (unordered iteration), work accounting, budget checkpoints,"
        " atomic writes, and exception hygiene.",
    )
    p.add_argument(
        "machine",
        nargs="*",
        help="built-in name or MDL file; with --code, files or"
        " directories of Python sources (default: the repro package)",
    )
    p.add_argument(
        "--code",
        action="store_true",
        help="run the code-plane rules over Python sources instead of"
        " a machine description",
    )
    p.add_argument(
        "--against",
        metavar="REF",
        help="reference description for the equivalence audit",
    )
    p.add_argument(
        "--format", choices=("text", "json"), default="text"
    )
    p.add_argument(
        "--fail-on",
        choices=("error", "warning", "info"),
        default="error",
        help="exit 1 when findings reach this severity (default: error)",
    )
    p.add_argument(
        "--baseline",
        metavar="FILE",
        help="suppress findings recorded in this baseline file",
    )
    p.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="record the current findings into a baseline file",
    )
    p.add_argument(
        "--rules",
        metavar="ID[,ID...]",
        help="run only these rule ids (default: all)",
    )
    p.add_argument(
        "--severity",
        action="append",
        metavar="RULE=LEVEL",
        help="override a rule's severity (repeatable)",
    )
    p.add_argument(
        "--list-rules",
        action="store_true",
        help="list the registered rules and exit",
    )
    p.add_argument(
        "--show-info",
        action="store_true",
        help="list info-severity findings in text output",
    )
    p.add_argument(
        "--max-cycle",
        type=int,
        default=512,
        help="plausibility bound for the cycle-overflow rule",
    )
    p.add_argument(
        "--mismatch-limit",
        type=int,
        default=20,
        help="cap on reported equivalence mismatches",
    )
    p.set_defaults(func=_cmd_lint)

    p = sub.add_parser("schedule", help="run the modulo scheduler")
    p.add_argument("machine")
    p.add_argument("--kernel", choices=sorted(KERNELS))
    p.add_argument("--loops", type=int, default=20)
    p.add_argument(
        "--representation",
        choices=("discrete", "bitvector", "compiled", "batch"),
        default=None,
        help="query representation (default: discrete, or batch"
        " with --corpus)",
    )
    p.add_argument(
        "--corpus",
        action="store_true",
        help="schedule the whole suite in one pass against a shared"
        " compiled kernel (columnar batch plane); loop failures are"
        " contained per loop and reported, exiting 1",
    )
    p.add_argument(
        "--processes",
        type=int,
        default=0,
        metavar="N",
        help="with --corpus: fan the suite out over N worker processes"
        " (forced serial when a --max-units/--deadline budget is set)",
    )
    p.add_argument("--word-cycles", type=int, default=1)
    p.add_argument(
        "--explain",
        metavar="FILE",
        help="also write a repro-explain-report v1 JSON artifact"
        " attributing MII and per-II failures (see 'repro explain')",
    )
    _add_observability_flags(p)
    _add_resilience_flags(p)
    _add_runlog_flag(p)
    p.set_defaults(func=_cmd_schedule)

    p = sub.add_parser(
        "explain",
        help="scheduling provenance: MII attribution and per-II blame",
        description="Replay the iterative modulo scheduler under a"
        " recording decision ledger and report why each loop scheduled"
        " at the II it did: which constraint pins MII (recurrence,"
        " saturated resource, or self-contention), which (resource,"
        " cycle) cells blocked each failed II, and what was evicted."
        " Exits 1 when any loop failed to schedule.",
    )
    p.add_argument("machine")
    p.add_argument("--kernel", choices=sorted(KERNELS))
    p.add_argument("--loops", type=int, default=8)
    p.add_argument(
        "--representation",
        choices=("discrete", "bitvector", "compiled"),
        default="discrete",
    )
    p.add_argument("--word-cycles", type=int, default=1)
    p.add_argument(
        "--format",
        choices=("text", "json", "html"),
        default="text",
    )
    p.add_argument(
        "-o", "--out",
        metavar="FILE",
        help="write the report to FILE (JSON becomes a checksummed"
        " artifact; text/HTML are written verbatim)",
    )
    _add_observability_flags(p)
    _add_runlog_flag(p)
    p.set_defaults(func=_cmd_explain)

    p = sub.add_parser(
        "chaos",
        help="deterministic fault injection against the resilience layer",
        description="Inject seed-derived faults (dropped/shifted usages,"
        " phase delays, truncated artifact writes, flipped checksums,"
        " corrupted reduction-cache entries) and report whether each was"
        " detected or survived via the verified fallback ladder.  Exits 0"
        " when every fault was handled, 1 when any fault goes unhandled,"
        " and 3 when the --deadline/--max-units budget is exceeded.",
    )
    p.add_argument("machine", help="built-in name or MDL file")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--deadline", type=float, metavar="SECONDS",
        help="wall-clock budget for the whole fault sweep (exceeded"
        " budgets exit 3)",
    )
    p.add_argument(
        "--max-units", type=int, metavar="N",
        help="work-unit budget for the whole fault sweep (exceeded"
        " budgets exit 3)",
    )
    p.add_argument(
        "--faults",
        nargs="+",
        metavar="FAULT",
        choices=(
            "drop-usage",
            "shift-usage",
            "phase-delay",
            "truncate-write",
            "flip-checksum",
            "corrupt-cache",
        ),
        help="fault classes to inject (default: all)",
    )
    p.add_argument(
        "--out",
        metavar="FILE",
        help="write the chaos report as a checksummed JSON artifact",
    )
    p.add_argument(
        "--workdir",
        metavar="DIR",
        help="directory for artifact-fault files (default: a temp dir)",
    )
    _add_observability_flags(p)
    _add_runlog_flag(p)
    p.set_defaults(func=_cmd_chaos)

    p = sub.add_parser(
        "fuzz",
        help="seeded fuzz campaign through the differential pipeline"
        " oracle",
        description="Generate seed-derived machine descriptions and push"
        " each through lint, the three query representations, reduce,"
        " certify, and the modulo scheduler, cross-checking every stage"
        " differentially.  Every fourth run additionally executes a"
        " composed multi-fault chaos plan.  The report is byte-identical"
        " across repeated runs of the same campaign.  Exits 1 when any"
        " run produced a bug verdict.",
    )
    p.add_argument("--seed", type=int, default=0, help="campaign seed")
    p.add_argument(
        "--runs", type=int, default=20,
        help="number of generated machines (default: 20)",
    )
    from repro.fuzz.mdlgen import PROFILES as _fuzz_profiles

    p.add_argument(
        "--profile",
        default="mixed",
        choices=tuple(sorted(_fuzz_profiles)),
        help="generator profile (default: mixed)",
    )
    p.add_argument(
        "--budget", type=int, metavar="UNITS",
        help="work-unit budget per oracle pipeline stage (exceeded stages"
        " become handled verdicts, not bugs)",
    )
    p.add_argument(
        "--shrink", action="store_true",
        help="minimize every bug to a local-minimum repro machine",
    )
    p.add_argument(
        "--bundles", metavar="DIR",
        help="with --shrink: write checksummed repro bundles under DIR",
    )
    p.add_argument(
        "--plans-every", type=int, default=4, metavar="N",
        help="run a composed chaos plan every N-th run (0 disables;"
        " default: 4)",
    )
    p.add_argument(
        "--out", metavar="FILE",
        help="write the campaign report as a checksummed JSON artifact",
    )
    _add_observability_flags(p)
    _add_runlog_flag(p)
    p.set_defaults(func=_cmd_fuzz)

    p = sub.add_parser(
        "runs",
        help="run registry: list / show / diff / trend / gc / metrics",
        description="Query the persistent run registry that --runlog"
        " (or REPRO_RUNLOG) populates: list and inspect records, gate"
        " one run against another with the bench comparator's policy,"
        " detect work/quality regressions over the longitudinal series"
        " with a seeded changepoint test, expire old records, and export"
        " the registry (or a metrics JSON) as an OpenMetrics scrape."
        "  See docs/runs.md.",
    )
    runs_sub = p.add_subparsers(dest="runs_command", required=True)

    def _add_runs_common(r):
        _add_runlog_flag(r)
        r.add_argument(
            "--format", choices=("text", "json"), default="text"
        )

    r = runs_sub.add_parser("list", help="list registry records")
    r.add_argument(
        "--tail", type=int, default=0, metavar="N",
        help="show only the newest N records",
    )
    _add_runs_common(r)
    r.set_defaults(func=_cmd_runs_list)

    r = runs_sub.add_parser("show", help="print one record as JSON")
    r.add_argument("seq", type=int, help="record sequence number")
    _add_runs_common(r)
    r.set_defaults(func=_cmd_runs_show)

    r = runs_sub.add_parser(
        "diff",
        help="gate one record against another (exit 1 on regression)",
        description="Compare two registry records' work units and"
        " schedule quality under the bench comparator's two-tier"
        " policy: deterministic work gates hard beyond --work-ratio"
        " above the --min-units floor, quality gates at"
        " --quality-ratio (loops_at_mii bigger-is-better), and a"
        " loops/mii_total mismatch marks the pair incomparable.",
    )
    r.add_argument("base", type=int, help="baseline record seq")
    r.add_argument("new", type=int, help="candidate record seq")
    r.add_argument("--work-ratio", type=float, default=1.01)
    r.add_argument("--quality-ratio", type=float, default=1.0)
    r.add_argument("--min-units", type=float, default=16.0)
    _add_runs_common(r)
    r.set_defaults(func=_cmd_runs_diff)

    r = runs_sub.add_parser(
        "trend",
        help="seeded changepoint detection over a metric series"
        " (exit 1 on regression)",
    )
    r.add_argument(
        "--metric", default="units.check", metavar="NAME",
        help="dotted metric: units.<currency>, calls.<currency>,"
        " quality.<key>, total_units, duration_s (default: units.check)",
    )
    r.add_argument(
        "--window", type=int, default=0, metavar="N",
        help="analyze only the trailing N records (default: all)",
    )
    r.add_argument(
        "--seed", type=int, default=0,
        help="permutation-test seed (default: 0)",
    )
    r.add_argument(
        "--alpha", type=float, default=0.05,
        help="significance level (default: 0.05)",
    )
    r.add_argument(
        "--permutations", type=int, default=200,
        help="permutation count (default: 200)",
    )
    r.add_argument(
        "--min-ratio", type=float, default=1.02,
        help="ignore level shifts smaller than this ratio (default: 1.02)",
    )
    _add_runs_common(r)
    r.set_defaults(func=_cmd_runs_trend)

    r = runs_sub.add_parser("gc", help="expire old registry records")
    r.add_argument(
        "--keep", type=int, required=True, metavar="N",
        help="keep only the newest N records",
    )
    r.add_argument(
        "--prune-corrupt", action="store_true",
        help="also delete corrupt records regardless of age",
    )
    _add_runs_common(r)
    r.set_defaults(func=_cmd_runs_gc)

    r = runs_sub.add_parser(
        "metrics",
        help="export the registry (or a metrics JSON) as OpenMetrics",
    )
    r.add_argument(
        "--tail", type=int, default=0, metavar="N",
        help="aggregate only the newest N records (default: all)",
    )
    r.add_argument(
        "--from-metrics", metavar="FILE",
        help="render a repro-obs-metrics JSON document instead of the"
        " registry",
    )
    r.add_argument(
        "-o", "--out", default="-", metavar="FILE",
        help="write the exposition to FILE (default: stdout)",
    )
    _add_runs_common(r)
    r.set_defaults(func=_cmd_runs_metrics)

    return parser


#: Exit code -> registry outcome label (see docs/runs.md).
_OUTCOME_LABELS = {
    0: "ok",
    1: "fail",
    2: "error",
    3: "budget-exceeded",
    130: "interrupted",
    141: "interrupted",
}


def main(argv: Optional[List[str]] = None) -> int:
    global _RECORDER
    parser = build_parser()
    args = parser.parse_args(argv)
    runlog_dir = getattr(args, "runlog", None) or os.environ.get(
        "REPRO_RUNLOG"
    )
    recorder = None
    command = _record_command(args)
    if runlog_dir and command is not None:
        from repro.obs.runlog import RunRecorder

        # The registry location is where the record *lands*, not part of
        # the workload's identity — exclude it so the same invocation
        # logged to two directories produces byte-identical records.
        recorder = RunRecorder(
            command,
            {
                k: v for k, v in vars(args).items()
                if k not in ("func", "runlog")
            },
        )
    _RECORDER = recorder
    del _RECORDER_BUDGETS[:]
    try:
        code = _dispatch(args)
    finally:
        _RECORDER = None
    if recorder is not None:
        budgets = list(_RECORDER_BUDGETS)
        del _RECORDER_BUDGETS[:]
        if budgets:
            recorder.note(budget={
                "units": sum(budget.units for budget in budgets),
                "deadline_s": getattr(args, "deadline", None),
                "max_units": getattr(args, "max_units", None),
            })
        outcome = _OUTCOME_LABELS.get(code, "fail")
        from repro.obs.runlog import RunLog

        try:
            RunLog(runlog_dir).append(recorder.finalize(outcome, code))
        except OSError as exc:
            # The registry is an observer: failing to append must never
            # change the recorded command's own outcome.
            print(
                "warning: cannot append runlog record to %r: %s"
                % (runlog_dir, exc),
                file=sys.stderr,
            )
    return code


def _dispatch(args: argparse.Namespace) -> int:
    try:
        return args.func(args)
    except KeyboardInterrupt:
        # Atomic artifact writes guarantee no partial files survive the
        # interrupt; 130 = 128 + SIGINT, the shell convention.
        print("interrupted", file=sys.stderr)
        return 130
    except BudgetExceeded as exc:
        # Distinct from usage errors (2) and lint/verify findings (1) so
        # callers can retry with a larger budget or --fallback.
        print("budget exceeded: %s" % exc, file=sys.stderr)
        return 3
    except ReproError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream closed the pipe (e.g. `repro bench report | head`).
        # Point stdout at devnull so the interpreter's shutdown flush
        # doesn't raise again; 141 = 128 + SIGPIPE, the shell convention.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 141


if __name__ == "__main__":
    sys.exit(main())
