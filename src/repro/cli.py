"""Command-line interface: ``repro <command>`` (or ``python -m repro``).

Commands
--------
``reduce``    reduce a machine description and optionally write it out
``verify``    check that two descriptions preserve the same constraints
``certify``   issue or independently check a preservation certificate
``stats``     print the Tables 1-4 metrics for a description
``show``      dump a (built-in) machine as MDL text
``schedule``  modulo-schedule the named kernels or a generated loop suite
``explain``   scheduling provenance: MII attribution, per-II failure
              blame, decision-ledger rollups (text/JSON/HTML)
``report``    human-readable machine / reduction report
``diff``      scheduling-constraint diff between two descriptions
``expand``    modulo-schedule a kernel and print its software pipeline
``automata``  build the contention-recognizing automata and report sizes
``lint``      static-analysis audit: machine descriptions, or with
              ``--code`` the repro sources themselves
``profile``   reduce + schedule under tracing; per-phase time/work report
``chaos``     deterministic fault injection against the resilience layer
``fuzz``      seeded fuzz campaign: generated machines through the
              differential pipeline oracle (plus composed chaos plans)
``bench``     benchmark observatory: ``run`` / ``compare`` / ``report``

``certify`` validates Theorem-1 witness certificates without re-running
the reduction (``repro certify ORIG REDUCED [--cert FILE]``); ``reduce``
emits one with ``--certificate FILE``, and ``reduce --cache`` verifies
warm hits via their stored certificate unless ``--paranoid`` — see
``docs/certificates.md``.

``bench run`` records a schema-versioned, checksummed benchmark result
(deterministic work units, robust wall-time stats, per-phase spans,
schedule quality); ``bench compare`` gates a candidate run against a
baseline (work units gate hard, wall time only when bootstrap intervals
disagree) and exits 1 on regression — see ``docs/benchmarking.md``.

``reduce`` and ``schedule`` accept ``--deadline``/``--max-units`` budgets
(exceeded budgets exit 3) and ``--fallback`` to degrade down the verified
fallback ladder instead of failing — see ``docs/robustness.md``.

``reduce``, ``schedule``, ``automata``, and ``profile`` accept
``--metrics FILE`` (schema-versioned JSON metrics, ``-`` for stdout) and
``--trace FILE`` (Chrome ``trace_event`` JSON, loadable in Perfetto) —
see ``docs/observability.md``.

``explain`` replays the scheduler under a decision ledger and reports
*why* each loop scheduled at its II (``repro-explain-report`` v1);
``schedule --explain FILE`` writes the same document alongside a normal
run — see ``docs/explain.md``.

``fuzz`` generates seeded, lintable machine descriptions and pushes each
through reduce → certify → schedule, cross-checking the three query
representations and classifying every run ``ok`` / ``handled`` / ``bug``
(``repro fuzz --seed N --runs M [--shrink] [--out FILE]``) — see
``docs/fuzzing.md``.

Machines are referenced either by a built-in name (``cydra5``,
``cydra5-subset``, ``alpha21064``, ``mips-r3000``, ``playdoh``,
``example``, ``buffered-pu``, ``clustered-vliw``) or by the path of an
MDL file.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import sys
from typing import List, Optional, Tuple

from repro import mdl
from repro.core import reduce_machine
from repro.core.forbidden import ForbiddenLatencyMatrix
from repro.core.machine import MachineDescription
from repro.core.verify import differences
from repro.errors import BudgetExceeded, ReproError
from repro.machines import (
    CORPUS_MACHINES,
    STUDY_MACHINES,
    example_machine,
    playdoh,
)
from repro.scheduler import IterativeModuloScheduler
from repro.stats import describe
from repro.workloads import KERNELS, loop_suite

_BUILTINS = dict(STUDY_MACHINES)
_BUILTINS["example"] = example_machine
_BUILTINS["playdoh"] = playdoh
_BUILTINS.update(CORPUS_MACHINES)


def _load_machine(ref: str) -> MachineDescription:
    if ref in _BUILTINS:
        return _BUILTINS[ref]()
    if os.sep in ref or ref.endswith(".mdl") or os.path.exists(ref):
        try:
            return mdl.load_file(ref)
        except (OSError, UnicodeDecodeError) as exc:
            raise ReproError(
                "cannot read machine file %r: %s" % (ref, exc)
            ) from exc
    raise ReproError(
        "unknown machine %r: not a built-in machine and not an existing"
        " MDL file (built-ins: %s)" % (ref, ", ".join(sorted(_BUILTINS)))
    )


@contextlib.contextmanager
def _observing(args: argparse.Namespace):
    """Activate tracing for a command when ``--trace``/``--metrics`` ask.

    Yields the tracer (or ``None`` when observability is off) and writes
    the requested export files after the command body finishes.
    """
    trace_path = getattr(args, "trace", None)
    metrics_path = getattr(args, "metrics", None)
    if not trace_path and not metrics_path:
        yield None
        return
    from repro import obs

    tracer = obs.Tracer(trace_queries=bool(trace_path))
    with obs.tracing(tracer):
        if metrics_path == "-":
            # Stdout must carry the JSON document alone; the command's
            # human-readable report moves to stderr.
            with contextlib.redirect_stdout(sys.stderr):
                yield tracer
        else:
            yield tracer
    if metrics_path:
        _write_export(obs.write_metrics, tracer, metrics_path, "metrics")
        if metrics_path != "-":
            print("wrote metrics %s" % metrics_path, file=sys.stderr)
    if trace_path:
        _write_export(obs.write_chrome_trace, tracer, trace_path, "trace")
        print(
            "wrote trace %s (open in https://ui.perfetto.dev)" % trace_path,
            file=sys.stderr,
        )


def _write_export(writer, tracer, path: str, what: str) -> None:
    try:
        writer(tracer, path)
    except OSError as exc:
        raise ReproError("cannot write %s file %r: %s" % (what, path, exc))


def _add_observability_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--metrics",
        metavar="FILE",
        help="write metrics JSON to FILE ('-' for stdout)",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        help="write a Chrome trace_event JSON to FILE (Perfetto-loadable)",
    )


def _make_budget(args: argparse.Namespace, label: str):
    """A :class:`~repro.resilience.Budget` from ``--deadline``/``--max-units``
    (``None`` when neither flag is given)."""
    deadline = getattr(args, "deadline", None)
    max_units = getattr(args, "max_units", None)
    if deadline is None and max_units is None:
        return None
    from repro.resilience import Budget

    return Budget(deadline_s=deadline, max_units=max_units, label=label)


def _add_resilience_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--deadline",
        type=float,
        metavar="SECONDS",
        help="wall-clock budget; exceeded budgets exit 3 (or degrade"
        " with --fallback)",
    )
    parser.add_argument(
        "--max-units",
        type=int,
        metavar="N",
        help="work-unit budget (same currency as the query metrics)",
    )
    parser.add_argument(
        "--fallback",
        action="store_true",
        help="degrade down the verified fallback ladder instead of failing",
    )


def _cmd_reduce(args: argparse.Namespace) -> int:
    machine = _load_machine(args.machine)
    with _observing(args) as tracer:
        if tracer is not None:
            tracer.meta.update(
                command="reduce", machine=machine.name,
                objective=args.objective, word_cycles=args.word_cycles,
            )
        certificate = None
        if args.fallback:
            from repro.resilience import FallbackPolicy, reduce_with_fallback

            policy = FallbackPolicy(
                deadline_s=args.deadline, max_units=args.max_units
            )
            outcome = reduce_with_fallback(machine, policy)
            print(
                "fallback ladder served rung %r (%s) after %d attempt(s)"
                % (outcome.rung, outcome.marker, len(outcome.attempts))
            )
            for attempt in outcome.attempts:
                if attempt.failed:
                    print(
                        "  %s: %s failed (%s)"
                        % (attempt.rung, attempt.detail, attempt.error_type)
                    )
            if outcome.reduction is not None:
                print(outcome.reduction.summary())
            served = outcome.machine
            certificate = outcome.certificate
        elif args.cache:
            from repro.resilience import cached_reduce

            cached = cached_reduce(
                machine,
                objective=args.objective,
                word_cycles=args.word_cycles,
                cache_dir=args.cache,
                paranoid=args.paranoid,
            )
            if cached.reduction is not None:
                print(cached.reduction.summary())
            detail = "verified via %s" % cached.verification
            if cached.verify_units:
                detail += ", %d work units" % cached.verify_units
            print(
                "reduction cache: %s (digest %s, %s)"
                % (cached.source, cached.digest[:16], detail)
            )
            served = cached.reduced
            certificate = cached.certificate
        else:
            reduction = reduce_machine(
                machine,
                objective=args.objective,
                word_cycles=args.word_cycles,
                budget=_make_budget(args, "reduce"),
            )
            print(reduction.summary())
            served = reduction.reduced
            if args.certificate:
                from repro.core.certificate import issue_certificate

                certificate = issue_certificate(reduction)
        if args.output:
            from repro.resilience import artifacts

            artifacts.write_machine(args.output, served)
            print(
                "wrote %s (+ checksum sidecar %s)"
                % (args.output, artifacts.sidecar_path(args.output))
            )
        if args.certificate:
            from repro.resilience import artifacts

            if certificate is None:
                raise ReproError(
                    "no certificate available to write (the served"
                    " description was not verified)"
                )
            artifacts.write_certificate(args.certificate, certificate)
            print(
                "wrote certificate %s (%d instances, %d classes)"
                % (
                    args.certificate,
                    len(certificate.witnesses),
                    len(certificate.classes),
                )
            )
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    first = _load_machine(args.first)
    second = _load_machine(args.second)
    mismatches = differences(first, second)
    if not mismatches:
        print(
            "EQUIVALENT: %r and %r preserve the same scheduling constraints"
            % (first.name, second.name)
        )
        return 0
    print("NOT EQUIVALENT: %d differing operation pairs" % len(mismatches))
    for op_x, op_y, only_first, only_second in mismatches[: args.limit]:
        print(
            "  %s / %s: only-first=%s only-second=%s"
            % (op_x, op_y, sorted(only_first), sorted(only_second))
        )
    return 1


def _cmd_certify(args: argparse.Namespace) -> int:
    from repro.core.certificate import (
        certificate_from_machines,
        check_certificate,
        equivalence_work_units,
    )
    from repro.core.verify import assert_equivalent
    from repro.errors import (
        CertificateError,
        EquivalenceError,
        render_mismatches,
    )
    from repro.resilience import artifacts

    original = _load_machine(args.original)
    reduced = _load_machine(args.reduced)
    document = {
        "schema": "repro-certify-report",
        "version": 1,
        "original": original.name,
        "reduced": reduced.name,
        "ok": False,
    }

    def emit(error=None):
        if error is not None:
            document["error"] = error
        if args.format == "json":
            print(json.dumps(document, indent=2, sort_keys=True))

    try:
        if args.cert:
            certificate = artifacts.load_certificate(args.cert)
            source = args.cert
        else:
            certificate = certificate_from_machines(original, reduced)
            source = "issued"
        check = check_certificate(
            certificate, original, reduced,
            recompute_matrix=not args.structural,
        )
        if args.paranoid:
            assert_equivalent(original, reduced)
    except EquivalenceError as exc:
        emit({"kind": "equivalence", "message": str(exc)})
        if args.format != "json":
            print("NOT CERTIFIED: %s" % exc, file=sys.stderr)
            if exc.mismatches:
                print(
                    "  witness pairs: %s"
                    % render_mismatches(exc.mismatches),
                    file=sys.stderr,
                )
        return 1
    except CertificateError as exc:
        error = {"kind": exc.kind or "certificate", "message": str(exc)}
        if exc.instance is not None:
            error["instance"] = list(exc.instance)
        emit(error)
        if args.format != "json":
            print("CERTIFICATE REJECTED: %s" % exc, file=sys.stderr)
        return 1

    document.update(
        ok=True,
        mode="paranoid" if args.paranoid else check.mode,
        instances=check.instances,
        classes=check.classes,
        units=check.units,
        equivalence_units=equivalence_work_units(original, reduced),
        matrix_digest=certificate.matrix_digest,
        certificate=source,
    )
    if args.emit:
        artifacts.write_certificate(args.emit, certificate)
        document["emitted"] = args.emit
    emit()
    if args.format != "json":
        print(
            "CERTIFIED (%s): %r preserves the scheduling constraints of"
            " %r" % (document["mode"], reduced.name, original.name)
        )
        print(
            "  %d instances in %d classes; check spent %d work units"
            " (full equivalence re-check costs %d)"
            % (
                check.instances, check.classes, check.units,
                document["equivalence_units"],
            )
        )
        if args.emit:
            print(
                "  wrote certificate %s (+ checksum sidecar %s)"
                % (args.emit, artifacts.sidecar_path(args.emit))
            )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    machine = _load_machine(args.machine)
    matrix = ForbiddenLatencyMatrix.from_machine(machine)
    stats = describe(machine, word_cycles=tuple(args.word_cycles))
    print("machine:                %s" % machine.name)
    print("operations:             %d" % machine.num_operations)
    print("operation classes:      %d" % len(matrix.operation_classes()))
    print("resources:              %d" % stats.num_resources)
    print("total usages:           %d" % machine.total_usages)
    print("avg usages/op:          %.1f" % stats.avg_usages_per_op)
    print("forbidden latencies:    %d (max %d)" % (
        matrix.instance_count, matrix.max_latency))
    for k in args.word_cycles:
        print(
            "avg %d-cycle-word uses:  %.1f" % (k, stats.avg_word_usages[k])
        )
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    machine = _load_machine(args.machine)
    sys.stdout.write(mdl.dumps(machine))
    return 0


def _cmd_schedule(args: argparse.Namespace) -> int:
    machine = _load_machine(args.machine)
    scheduler = IterativeModuloScheduler(
        machine,
        representation=args.representation,
        word_cycles=args.word_cycles,
    )
    if args.kernel:
        graphs = [KERNELS[args.kernel]()]
    else:
        graphs = loop_suite(args.loops)
    optimal = 0
    with _observing(args) as tracer:
        if tracer is not None:
            tracer.meta.update(
                command="schedule", machine=machine.name,
                representation=args.representation,
                kernel=args.kernel or ("suite[%d]" % args.loops),
            )
        if args.fallback:
            from repro.resilience import FallbackPolicy, schedule_with_fallback

            policy = FallbackPolicy(
                deadline_s=args.deadline, max_units=args.max_units
            )
            print(
                "%-22s %4s %4s %4s %-6s"
                % ("loop", "ops", "MII", "II", "rung")
            )
            for graph in graphs:
                outcome = schedule_with_fallback(
                    machine,
                    graph,
                    policy,
                    representation=args.representation,
                    word_cycles=args.word_cycles,
                )
                optimal += outcome.ii == outcome.mii
                print(
                    "%-22s %4d %4d %4d %-6s"
                    % (
                        graph.name,
                        graph.num_operations,
                        outcome.mii,
                        outcome.ii,
                        outcome.rung,
                    )
                )
        else:
            print(
                "%-22s %4s %4s %4s %8s"
                % ("loop", "ops", "MII", "II", "dec/op")
            )
            for graph in graphs:
                result = scheduler.schedule(
                    graph, budget=_make_budget(args, "schedule:" + graph.name)
                )
                optimal += result.optimal
                print(
                    "%-22s %4d %4d %4d %8.2f"
                    % (
                        graph.name,
                        graph.num_operations,
                        result.mii,
                        result.ii,
                        result.decisions_per_op,
                    )
                )
        print(
            "\n%d/%d loops scheduled at MII (%.1f%%)"
            % (optimal, len(graphs), 100.0 * optimal / len(graphs))
        )
        if args.explain:
            _write_explain_report(machine, graphs, args, args.explain)
    return 0


def _write_explain_report(machine, graphs, args, path: str) -> None:
    """Build and write a ``repro-explain-report`` v1 JSON artifact."""
    from repro.analysis import build_explain_report
    from repro.resilience import artifacts

    report = build_explain_report(
        machine,
        graphs,
        representation=args.representation,
        word_cycles=args.word_cycles,
    )
    artifacts.write_json(path, report, kind="explain")
    print("wrote explain report %s" % path, file=sys.stderr)


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro.analysis import (
        build_explain_report,
        render_explain_html,
        render_explain_text,
    )

    from repro.workloads import port_graph

    machine = _load_machine(args.machine)
    if args.kernel:
        graphs = [KERNELS[args.kernel]()]
    else:
        graphs = loop_suite(args.loops)
    # The suite speaks the Cydra vocabulary; port it onto machines with
    # a registered opcode map (playdoh, alpha, mips) so every study
    # machine can be explained.
    graphs = [port_graph(graph, machine) for graph in graphs]
    with _observing(args) as tracer:
        if tracer is not None:
            tracer.meta.update(
                command="explain", machine=machine.name,
                representation=args.representation,
                kernel=args.kernel or ("suite[%d]" % args.loops),
            )
        report = build_explain_report(
            machine,
            graphs,
            representation=args.representation,
            word_cycles=args.word_cycles,
        )
        if args.format == "json":
            if args.out:
                from repro.resilience import artifacts

                artifacts.write_json(args.out, report, kind="explain")
                print("wrote explain report %s" % args.out, file=sys.stderr)
            else:
                json.dump(report, sys.stdout, indent=2, sort_keys=True)
                sys.stdout.write("\n")
        else:
            render = (
                render_explain_html if args.format == "html"
                else render_explain_text
            )
            text = render(report, machine)
            if args.out:
                from repro._atomic import atomic_write_text

                try:
                    atomic_write_text(args.out, text + "\n")
                except OSError as exc:
                    raise ReproError(
                        "cannot write explain file %r: %s" % (args.out, exc)
                    )
                print("wrote %s" % args.out, file=sys.stderr)
            else:
                print(text)
    return 0 if report["summary"]["failed"] == 0 else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.resilience import artifacts, run_chaos

    machine = _load_machine(args.machine)
    with _observing(args) as tracer:
        if tracer is not None:
            tracer.meta.update(
                command="chaos", machine=machine.name, seed=args.seed
            )
        report = run_chaos(
            machine,
            seed=args.seed,
            faults=args.faults,
            workdir=args.workdir,
            budget=_make_budget(args, "chaos"),
        )
        print(report.render_text())
        if args.out:
            header = artifacts.write_json(
                args.out, report.to_dict(), kind="chaos"
            )
            # Read the artifact straight back: a chaos run that cannot
            # round-trip its own report through the checksummed store is
            # itself a resilience failure.
            artifacts.verify_artifact(args.out)
            print(
                "wrote %s (sha256 %s)" % (args.out, header["sha256"]),
                file=sys.stderr,
            )
    # Exit-code contract: 0 = every fault handled, 1 = any unhandled
    # fault, 3 = budget exceeded (raised through main()'s handler).
    return 0 if report.ok else 1


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.fuzz import run_campaign
    from repro.resilience import artifacts

    with _observing(args) as tracer:
        if tracer is not None:
            tracer.meta.update(
                command="fuzz", seed=args.seed, profile=args.profile
            )
        report = run_campaign(
            seed=args.seed,
            runs=args.runs,
            profile=args.profile,
            max_units=args.budget,
            do_shrink=args.shrink,
            bundle_dir=args.bundles,
            plans_every=args.plans_every,
        )
        counts = report["counts"]
        print(
            "fuzz campaign seed=%d profile=%s: %d runs"
            % (args.seed, args.profile, args.runs)
        )
        print(
            "  ok=%d handled=%d bug=%d plans=%d"
            % (
                counts["ok"], counts["handled"], counts["bug"],
                len(report["plans"]),
            )
        )
        for bug in report["bugs"]:
            print(
                "  BUG run=%d seed=%d %s (%s)"
                % (
                    bug["run"], bug["seed"], bug["fingerprint"],
                    bug["stage"],
                )
            )
        for manifest in report["bundles"]:
            print("  repro bundle: %s" % manifest["directory"])
        if args.out:
            artifacts.write_json(args.out, report, kind="fuzz")
            artifacts.verify_artifact(args.out)
            print("wrote %s" % args.out, file=sys.stderr)
    return 0 if report["ok"] else 1


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis import describe_machine, describe_reduction

    machine = _load_machine(args.machine)
    print(describe_machine(machine))
    if args.reduce:
        print()
        print(
            describe_reduction(
                reduce_machine(
                    machine,
                    objective=args.objective,
                    word_cycles=args.word_cycles,
                )
            )
        )
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    from repro.analysis import diff_constraints
    from repro.core import find_witness

    first = _load_machine(args.first)
    second = _load_machine(args.second)
    text = diff_constraints(first, second, limit=args.limit)
    print(text)
    if text.startswith("EQUIVALENT"):
        return 0
    witness = find_witness(first, second)
    if witness is not None:
        print("witness: " + witness.describe())
    return 1


def _cmd_expand(args: argparse.Namespace) -> int:
    from repro.scheduler import expand

    machine = _load_machine(args.machine)
    scheduler = IterativeModuloScheduler(machine)
    graph = KERNELS[args.kernel]()
    result = scheduler.schedule(graph)
    expanded = expand(result, iterations=args.iterations)
    print(
        "%s on %s: II=%d (MII=%d), %d stages"
        % (graph.name, machine.name, result.ii, result.mii,
           expanded.num_stages)
    )
    print()
    print(expanded.render_kernel())
    print()
    print("timeline (%d iterations):" % args.iterations)
    print(expanded.render_timeline(limit=args.limit))
    return 0


def _cmd_automata(args: argparse.Namespace) -> int:
    from repro.automata import (
        AutomatonTooLarge,
        FactoredAutomata,
        PipelineAutomaton,
    )

    from repro.obs import trace as obs_trace

    machine = _load_machine(args.machine)
    with _observing(args) as tracer:
        if tracer is not None:
            tracer.meta.update(
                command="automata", machine=machine.name, factor=args.factor
            )
        try:
            with obs_trace.span(
                "build_monolithic", obs_trace.CAT_AUTOMATA,
                machine=machine.name,
            ):
                monolithic = PipelineAutomaton.build(
                    machine, max_states=args.max_states
                )
            print(
                "monolithic automaton: %d states, %d transitions (~%d KiB)"
                % (
                    monolithic.num_states,
                    monolithic.num_transitions,
                    monolithic.memory_bytes() // 1024,
                )
            )
        except AutomatonTooLarge:
            print(
                "monolithic automaton: exceeds %d states" % args.max_states
            )
        try:
            with obs_trace.span(
                "build_factored", obs_trace.CAT_AUTOMATA,
                machine=machine.name, mode=args.factor,
            ):
                factored = FactoredAutomata.build(
                    machine, mode=args.factor, max_states=args.max_states
                )
            print(
                "%s-factored automata: %d factors, %d total states "
                "(largest %d, ~%d KiB)"
                % (
                    args.factor,
                    factored.num_factors,
                    factored.num_states,
                    factored.max_factor_states,
                    factored.memory_bytes() // 1024,
                )
            )
        except AutomatonTooLarge:
            print(
                "%s-factored automata: a factor exceeds %d states"
                % (args.factor, args.max_states)
            )
        print(
            "reduced bitvector alternative: %d reserved bits per cycle"
            % reduce_machine(machine).reduced.num_resources
        )
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro import obs
    from repro.obs.profile import profile_machine

    machine = _load_machine(args.machine)
    # Per-query spans are only worth recording when a per-span export
    # (Chrome trace or flamegraph) is requested.
    tracer = obs.Tracer(
        trace_queries=bool(args.trace or args.flamegraph)
    )
    profile_machine(
        machine,
        kernel=args.kernel,
        loops=args.loops,
        representation=args.representation,
        word_cycles=args.word_cycles,
        objective=args.objective,
        schedule_reduced=args.reduced,
        tracer=tracer,
        reduction_cache=args.reduction_cache,
    )
    if args.metrics != "-" and args.flamegraph != "-":
        # With ``--metrics -``/``--flamegraph -`` stdout carries the
        # export alone.
        print(obs.render_text(tracer))
    if args.metrics:
        _write_export(obs.write_metrics, tracer, args.metrics, "metrics")
        if args.metrics != "-":
            print("wrote metrics %s" % args.metrics, file=sys.stderr)
    if args.trace:
        _write_export(obs.write_chrome_trace, tracer, args.trace, "trace")
        print(
            "wrote trace %s (open in https://ui.perfetto.dev)" % args.trace,
            file=sys.stderr,
        )
    if args.flamegraph:
        _write_export(
            obs.write_collapsed_stack, tracer, args.flamegraph, "flamegraph"
        )
        if args.flamegraph != "-":
            print(
                "wrote collapsed stacks %s (flamegraph.pl / speedscope"
                " / inferno)" % args.flamegraph,
                file=sys.stderr,
            )
    return 0


def _bench_machines(args: argparse.Namespace):
    """Resolve the ``bench run`` machine list to (name, machine) pairs."""
    from repro.bench import runner

    if args.machines:
        names = list(args.machines)
    elif args.quick:
        names = list(runner.QUICK_MACHINES)
    else:
        names = list(runner.DEFAULT_MACHINES)
    return [(name, _load_machine(name)) for name in names]


def _cmd_bench_run(args: argparse.Namespace) -> int:
    from repro.bench import render_result_text, save_result
    from repro.bench import runner

    from repro.query import REPRESENTATIONS

    machines = _bench_machines(args)
    representations = [
        r.strip() for r in args.representations.split(",") if r.strip()
    ]
    for representation in representations:
        if representation not in REPRESENTATIONS:
            raise ReproError(
                "unknown representation %r (choose from %s)"
                % (representation, ", ".join(REPRESENTATIONS))
            )
    loops = args.loops or (
        runner.QUICK_LOOPS if args.quick else runner.DEFAULT_LOOPS
    )
    repetitions = args.repetitions or (
        runner.QUICK_REPETITIONS if args.quick else runner.DEFAULT_REPETITIONS
    )
    result = runner.run_benchmark(
        machines,
        representations=representations,
        loops=loops,
        repetitions=repetitions,
        schedule_reduced=args.reduced,
        budget=_make_budget(args, "bench"),
        label=args.label,
        quick=args.quick,
        case_filter=args.filter,
    )
    if args.format == "json":
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    else:
        print(render_result_text(result))
    if args.output:
        save_result(args.output, result)
        print("wrote %s (+ checksum sidecar)" % args.output,
              file=sys.stderr)
    return 0


def _cmd_bench_compare(args: argparse.Namespace) -> int:
    from repro.bench import (
        CompareConfig,
        compare_results,
        load_result,
        render_comparison_text,
    )
    from repro.resilience import artifacts

    base = load_result(args.base)
    new = load_result(args.new)
    config = CompareConfig(
        work_ratio=args.work_ratio,
        quality_ratio=args.quality_ratio,
        gate_wall=args.gate_wall,
        min_units=args.min_units,
    )
    comparison = compare_results(base, new, config)
    if args.format == "json":
        print(json.dumps(comparison.to_dict(), indent=2, sort_keys=True))
    else:
        print(
            render_comparison_text(
                comparison, base, new, top=args.top, verbose=args.verbose
            )
        )
    if args.output:
        artifacts.write_json(
            args.output, comparison.to_dict(), kind="bench-compare"
        )
        print("wrote %s (+ checksum sidecar)" % args.output,
              file=sys.stderr)
    return 0 if comparison.ok else 1


def _cmd_bench_report(args: argparse.Namespace) -> int:
    from repro.bench import load_result, render_result_text

    result = load_result(args.result)
    if args.format == "json":
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    else:
        print(render_result_text(result))
    return 0


def _load_machine_with_raw(
    ref: str,
) -> Tuple[Optional[MachineDescription], Optional["mdl.RawMachine"]]:
    """Load ``ref`` keeping the raw parse when it names an MDL file.

    Built-ins return ``(machine, None)``.  Files return ``(None, raw)``
    so the linter can attach real source lines and can still audit files
    that fail semantic validation.
    """
    if ref in _BUILTINS:
        return _BUILTINS[ref](), None
    if os.sep in ref or ref.endswith(".mdl") or os.path.exists(ref):
        try:
            return None, mdl.parse_file(ref)
        except (OSError, UnicodeDecodeError) as exc:
            raise ReproError(
                "cannot read machine file %r: %s" % (ref, exc)
            ) from exc
    raise ReproError(
        "unknown machine %r: not a built-in machine and not an existing"
        " MDL file (built-ins: %s)" % (ref, ", ".join(sorted(_BUILTINS)))
    )


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint import (
        Baseline,
        lint_machine,
        lint_source,
        registered_rules,
        write_baseline,
    )

    if args.list_rules:
        if args.format == "json":
            print(
                json.dumps(
                    [
                        {
                            "id": lint_rule.id,
                            "severity": lint_rule.severity,
                            "summary": lint_rule.summary,
                        }
                        for lint_rule in registered_rules()
                    ],
                    indent=2,
                )
            )
        else:
            for lint_rule in registered_rules():
                print(
                    "%-24s %-8s %s"
                    % (lint_rule.id, lint_rule.severity, lint_rule.summary)
                )
        return 0
    if not args.machine and not args.code:
        raise ReproError("lint needs a machine (or --code / --list-rules)")

    baseline = Baseline.load(args.baseline) if args.baseline else None
    severity_overrides = {}
    for override in args.severity or []:
        rule_id, eq, severity = override.partition("=")
        if not eq:
            raise ReproError(
                "--severity takes RULE=LEVEL, got %r" % override
            )
        severity_overrides[rule_id] = severity
    rules = None
    if args.rules:
        rules = [r.strip() for r in args.rules.split(",") if r.strip()]
    options = {
        "max_cycle": args.max_cycle,
        "mismatch_limit": args.mismatch_limit,
    }

    if args.code:
        from repro.lint.code import lint_code_paths

        if args.against:
            raise ReproError("--against does not apply to lint --code")
        report = lint_code_paths(
            paths=args.machine or None,
            rules=rules,
            severity_overrides=severity_overrides,
            baseline=baseline,
            options=options,
        )
    else:
        if len(args.machine) > 1:
            raise ReproError(
                "lint audits one machine at a time"
                " (multiple paths are a --code feature)"
            )
        reference = (
            _load_machine(args.against) if args.against else None
        )
        machine, raw = _load_machine_with_raw(args.machine[0])
        kwargs = dict(
            against=reference,
            rules=rules,
            severity_overrides=severity_overrides,
            baseline=baseline,
            options=options,
        )
        if raw is not None:
            report = lint_source(raw, **kwargs)
        else:
            report = lint_machine(machine, **kwargs)

    if args.write_baseline:
        write_baseline(args.write_baseline, [report])
        print(
            "wrote %d suppression(s) to %s"
            % (len(report.diagnostics), args.write_baseline),
            file=sys.stderr,
        )

    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render_text(show_info=args.show_info))
    return 1 if report.exceeds(args.fail_on) else 0


def _cmd_table(args: argparse.Namespace) -> int:
    from repro.stats import render_reduction_table

    machine = _load_machine(args.machine)
    reductions = {"res-uses": reduce_machine(machine)}
    for k in args.word_cycles:
        reductions["%d-cycle-word" % k] = reduce_machine(
            machine, objective="word-uses", word_cycles=k
        )
    print(
        render_reduction_table(
            "Machine description metrics: %s" % machine.name,
            machine,
            reductions,
            word_cycles=tuple(args.word_cycles),
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reduced multipipeline machine descriptions "
        "(Eichenberger & Davidson, PLDI 1996)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("reduce", help="reduce a machine description")
    p.add_argument("machine", help="built-in name or MDL file")
    p.add_argument(
        "--objective",
        choices=("res-uses", "word-uses"),
        default="res-uses",
    )
    p.add_argument("--word-cycles", type=int, default=1)
    p.add_argument(
        "-o",
        "--output",
        help="write reduced machine as a checksummed MDL artifact",
    )
    p.add_argument(
        "--cache",
        metavar="DIR",
        help="digest-keyed reduction cache directory: repeats are served"
        " from verified checksummed artifacts (corrupt entries fall back"
        " to a fresh reduction and are rewritten)",
    )
    p.add_argument(
        "--certificate",
        metavar="FILE",
        help="write the reduction's preservation certificate as a"
        " checksummed artifact",
    )
    p.add_argument(
        "--paranoid",
        action="store_true",
        help="with --cache: re-prove disk hits with the full"
        " forbidden-matrix equivalence check instead of the certificate",
    )
    _add_observability_flags(p)
    _add_resilience_flags(p)
    p.set_defaults(func=_cmd_reduce)

    p = sub.add_parser("verify", help="compare two descriptions")
    p.add_argument("first")
    p.add_argument("second")
    p.add_argument("--limit", type=int, default=8)
    p.set_defaults(func=_cmd_verify)

    p = sub.add_parser(
        "certify",
        help="issue or check a preservation certificate",
        description="Prove that REDUCED preserves the scheduling"
        " constraints of ORIGINAL.  Without --cert, a certificate is"
        " issued (and optionally written with --emit); with --cert, the"
        " stored certificate artifact is validated independently —"
        " soundness and coverage of its Theorem-1 witness pairs plus a"
        " recomputation of the original's forbidden matrix.  Exits 1"
        " when certification fails.",
    )
    p.add_argument("original", help="built-in name or MDL file")
    p.add_argument("reduced", help="built-in name or MDL file")
    p.add_argument(
        "--cert",
        metavar="FILE",
        help="validate this certificate artifact instead of issuing",
    )
    p.add_argument(
        "--emit",
        metavar="FILE",
        help="write the certificate as a checksummed artifact",
    )
    p.add_argument(
        "--structural",
        action="store_true",
        help="skip recomputing the original's matrix (binding by"
        " canonical-MDL digest only — the warm-cache trust model)",
    )
    p.add_argument(
        "--paranoid",
        action="store_true",
        help="additionally run the full forbidden-matrix equivalence"
        " check",
    )
    p.add_argument(
        "--format", choices=("text", "json"), default="text"
    )
    p.set_defaults(func=_cmd_certify)

    p = sub.add_parser("stats", help="print description metrics")
    p.add_argument("machine")
    p.add_argument(
        "--word-cycles", type=int, nargs="+", default=[1, 2, 4]
    )
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser("show", help="dump a machine as MDL")
    p.add_argument("machine")
    p.set_defaults(func=_cmd_show)

    p = sub.add_parser(
        "table", help="render the Tables 1-4 metrics for a machine"
    )
    p.add_argument("machine")
    p.add_argument("--word-cycles", type=int, nargs="+", default=[1, 2, 4])
    p.set_defaults(func=_cmd_table)

    p = sub.add_parser("report", help="machine / reduction report")
    p.add_argument("machine")
    p.add_argument("--reduce", action="store_true")
    p.add_argument(
        "--objective", choices=("res-uses", "word-uses"), default="res-uses"
    )
    p.add_argument("--word-cycles", type=int, default=1)
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("diff", help="scheduling-constraint diff")
    p.add_argument("first")
    p.add_argument("second")
    p.add_argument("--limit", type=int, default=20)
    p.set_defaults(func=_cmd_diff)

    p = sub.add_parser("expand", help="print a software pipeline")
    p.add_argument("machine")
    p.add_argument("--kernel", choices=sorted(KERNELS), default="daxpy")
    p.add_argument("--iterations", type=int, default=4)
    p.add_argument("--limit", type=int, default=48)
    p.set_defaults(func=_cmd_expand)

    p = sub.add_parser("automata", help="automata size report")
    p.add_argument("machine")
    p.add_argument("--factor", choices=("unit", "resource"), default="unit")
    p.add_argument("--max-states", type=int, default=200_000)
    _add_observability_flags(p)
    p.set_defaults(func=_cmd_automata)

    p = sub.add_parser(
        "profile",
        help="reduce + schedule under tracing; time/work breakdown",
        description="Run the full pipeline (forbidden matrix, Algorithm 1,"
        " selection, Iterative Modulo Scheduling) with the observability"
        " layer active and print a per-phase time/work breakdown."
        " Optionally export metrics JSON and a Perfetto-loadable Chrome"
        " trace.",
    )
    p.add_argument("machine", help="built-in name or MDL file")
    p.add_argument(
        "--kernel",
        choices=sorted(KERNELS),
        help="profile one named kernel instead of the loop suite",
    )
    p.add_argument(
        "--loops",
        type=int,
        default=8,
        help="loop-suite size when no kernel is given (default: 8)",
    )
    p.add_argument(
        "--representation",
        choices=("discrete", "bitvector", "compiled"),
        default="discrete",
    )
    p.add_argument("--word-cycles", type=int, default=1)
    p.add_argument(
        "--objective", choices=("res-uses", "word-uses"), default="res-uses"
    )
    p.add_argument(
        "--reduced",
        action="store_true",
        help="schedule on the reduced description (paper's configuration)",
    )
    p.add_argument(
        "--reduction-cache",
        metavar="DIR",
        help="serve the reduction from a digest-keyed cache directory"
        " (entries are verified on load; corruption falls back to a"
        " fresh reduction)",
    )
    p.add_argument(
        "--flamegraph",
        metavar="FILE",
        help="write spans as collapsed stacks ('-' for stdout) for"
        " flamegraph.pl / speedscope / inferno",
    )
    _add_observability_flags(p)
    p.set_defaults(func=_cmd_profile)

    p = sub.add_parser(
        "bench",
        help="benchmark observatory: run / compare / report",
        description="Record schema-versioned benchmark results"
        " (deterministic work units, robust wall-time statistics,"
        " per-phase spans, schedule quality), compare a candidate run"
        " against a baseline with a noise-immune gate, and render stored"
        " results.  See docs/benchmarking.md.",
    )
    bench_sub = p.add_subparsers(dest="bench_command", required=True)

    b = bench_sub.add_parser(
        "run", help="run the benchmark matrix and record a result"
    )
    b.add_argument(
        "machines",
        nargs="*",
        help="machines to benchmark (default: example + cydra5-subset;"
        " --quick: example only)",
    )
    b.add_argument(
        "--quick",
        action="store_true",
        help="the CI configuration: small loop count, 3 repetitions",
    )
    b.add_argument(
        "--representations",
        default="discrete,bitvector,compiled",
        metavar="R[,R]",
        help="query representations to matrix over"
        " (default: discrete,bitvector,compiled)",
    )
    b.add_argument(
        "--filter",
        metavar="SUBSTRING",
        help="run only cases whose 'machine/representation' key contains"
        " SUBSTRING (e.g. 'cydra5-subset/' or '/compiled')",
    )
    b.add_argument(
        "--loops",
        type=int,
        help="loop-suite size per case (default: 8; --quick: 4)",
    )
    b.add_argument(
        "--repetitions",
        type=int,
        help="wall-time repetitions per case (default: 5; --quick: 3)",
    )
    b.add_argument(
        "--reduced",
        action="store_true",
        help="schedule on the reduced description",
    )
    b.add_argument("--label", default="", help="free-form run label")
    b.add_argument(
        "-o",
        "--output",
        metavar="FILE",
        help="write the result as a checksummed JSON artifact",
    )
    b.add_argument("--format", choices=("text", "json"), default="text")
    b.add_argument(
        "--deadline", type=float, metavar="SECONDS",
        help="wall-clock budget for the whole run (exit 3 when exceeded)",
    )
    b.add_argument(
        "--max-units", type=int, metavar="N",
        help="work-unit budget for the whole run",
    )
    b.set_defaults(func=_cmd_bench_run)

    b = bench_sub.add_parser(
        "compare",
        help="gate a candidate result against a baseline (exit 1 on"
        " regression)",
    )
    b.add_argument("base", help="baseline result file")
    b.add_argument("new", help="candidate result file")
    b.add_argument(
        "--work-ratio",
        type=float,
        default=1.01,
        help="deterministic work counters fail beyond this ratio"
        " (default: 1.01)",
    )
    b.add_argument(
        "--quality-ratio",
        type=float,
        default=1.0,
        help="schedule-quality counters fail beyond this ratio"
        " (default: 1.0 — any II increase fails)",
    )
    b.add_argument(
        "--min-units",
        type=float,
        default=16.0,
        help="ignore work counters below this many units (default: 16)",
    )
    b.add_argument(
        "--gate-wall",
        action="store_true",
        help="let wall-time regressions (disjoint bootstrap intervals)"
        " fail the gate — only meaningful on identical hardware",
    )
    b.add_argument(
        "--top",
        type=int,
        default=5,
        help="phases per case in the differential profile (default: 5)",
    )
    b.add_argument(
        "--verbose",
        action="store_true",
        help="also list neutral / unclassified deltas",
    )
    b.add_argument(
        "-o",
        "--output",
        metavar="FILE",
        help="write the comparison report as a checksummed JSON artifact",
    )
    b.add_argument("--format", choices=("text", "json"), default="text")
    b.set_defaults(func=_cmd_bench_compare)

    b = bench_sub.add_parser(
        "report", help="render a stored benchmark result"
    )
    b.add_argument("result", help="result file written by bench run -o")
    b.add_argument("--format", choices=("text", "json"), default="text")
    b.set_defaults(func=_cmd_bench_report)

    p = sub.add_parser(
        "lint",
        help="static-analysis audit (machine plane or --code plane)",
        description="Audit a machine description for constraint-level"
        " defects: redundant or unused rows, collapsible operations,"
        " dominated alternatives, ill-formed cycles, and (with --against)"
        " forbidden-latency disagreement with a reference description."
        " With --code, audit Python sources instead: determinism"
        " (unordered iteration), work accounting, budget checkpoints,"
        " atomic writes, and exception hygiene.",
    )
    p.add_argument(
        "machine",
        nargs="*",
        help="built-in name or MDL file; with --code, files or"
        " directories of Python sources (default: the repro package)",
    )
    p.add_argument(
        "--code",
        action="store_true",
        help="run the code-plane rules over Python sources instead of"
        " a machine description",
    )
    p.add_argument(
        "--against",
        metavar="REF",
        help="reference description for the equivalence audit",
    )
    p.add_argument(
        "--format", choices=("text", "json"), default="text"
    )
    p.add_argument(
        "--fail-on",
        choices=("error", "warning", "info"),
        default="error",
        help="exit 1 when findings reach this severity (default: error)",
    )
    p.add_argument(
        "--baseline",
        metavar="FILE",
        help="suppress findings recorded in this baseline file",
    )
    p.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="record the current findings into a baseline file",
    )
    p.add_argument(
        "--rules",
        metavar="ID[,ID...]",
        help="run only these rule ids (default: all)",
    )
    p.add_argument(
        "--severity",
        action="append",
        metavar="RULE=LEVEL",
        help="override a rule's severity (repeatable)",
    )
    p.add_argument(
        "--list-rules",
        action="store_true",
        help="list the registered rules and exit",
    )
    p.add_argument(
        "--show-info",
        action="store_true",
        help="list info-severity findings in text output",
    )
    p.add_argument(
        "--max-cycle",
        type=int,
        default=512,
        help="plausibility bound for the cycle-overflow rule",
    )
    p.add_argument(
        "--mismatch-limit",
        type=int,
        default=20,
        help="cap on reported equivalence mismatches",
    )
    p.set_defaults(func=_cmd_lint)

    p = sub.add_parser("schedule", help="run the modulo scheduler")
    p.add_argument("machine")
    p.add_argument("--kernel", choices=sorted(KERNELS))
    p.add_argument("--loops", type=int, default=20)
    p.add_argument(
        "--representation",
        choices=("discrete", "bitvector", "compiled"),
        default="discrete",
    )
    p.add_argument("--word-cycles", type=int, default=1)
    p.add_argument(
        "--explain",
        metavar="FILE",
        help="also write a repro-explain-report v1 JSON artifact"
        " attributing MII and per-II failures (see 'repro explain')",
    )
    _add_observability_flags(p)
    _add_resilience_flags(p)
    p.set_defaults(func=_cmd_schedule)

    p = sub.add_parser(
        "explain",
        help="scheduling provenance: MII attribution and per-II blame",
        description="Replay the iterative modulo scheduler under a"
        " recording decision ledger and report why each loop scheduled"
        " at the II it did: which constraint pins MII (recurrence,"
        " saturated resource, or self-contention), which (resource,"
        " cycle) cells blocked each failed II, and what was evicted."
        " Exits 1 when any loop failed to schedule.",
    )
    p.add_argument("machine")
    p.add_argument("--kernel", choices=sorted(KERNELS))
    p.add_argument("--loops", type=int, default=8)
    p.add_argument(
        "--representation",
        choices=("discrete", "bitvector", "compiled"),
        default="discrete",
    )
    p.add_argument("--word-cycles", type=int, default=1)
    p.add_argument(
        "--format",
        choices=("text", "json", "html"),
        default="text",
    )
    p.add_argument(
        "-o", "--out",
        metavar="FILE",
        help="write the report to FILE (JSON becomes a checksummed"
        " artifact; text/HTML are written verbatim)",
    )
    _add_observability_flags(p)
    p.set_defaults(func=_cmd_explain)

    p = sub.add_parser(
        "chaos",
        help="deterministic fault injection against the resilience layer",
        description="Inject seed-derived faults (dropped/shifted usages,"
        " phase delays, truncated artifact writes, flipped checksums,"
        " corrupted reduction-cache entries) and report whether each was"
        " detected or survived via the verified fallback ladder.  Exits 0"
        " when every fault was handled, 1 when any fault goes unhandled,"
        " and 3 when the --deadline/--max-units budget is exceeded.",
    )
    p.add_argument("machine", help="built-in name or MDL file")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--deadline", type=float, metavar="SECONDS",
        help="wall-clock budget for the whole fault sweep (exceeded"
        " budgets exit 3)",
    )
    p.add_argument(
        "--max-units", type=int, metavar="N",
        help="work-unit budget for the whole fault sweep (exceeded"
        " budgets exit 3)",
    )
    p.add_argument(
        "--faults",
        nargs="+",
        metavar="FAULT",
        choices=(
            "drop-usage",
            "shift-usage",
            "phase-delay",
            "truncate-write",
            "flip-checksum",
            "corrupt-cache",
        ),
        help="fault classes to inject (default: all)",
    )
    p.add_argument(
        "--out",
        metavar="FILE",
        help="write the chaos report as a checksummed JSON artifact",
    )
    p.add_argument(
        "--workdir",
        metavar="DIR",
        help="directory for artifact-fault files (default: a temp dir)",
    )
    _add_observability_flags(p)
    p.set_defaults(func=_cmd_chaos)

    p = sub.add_parser(
        "fuzz",
        help="seeded fuzz campaign through the differential pipeline"
        " oracle",
        description="Generate seed-derived machine descriptions and push"
        " each through lint, the three query representations, reduce,"
        " certify, and the modulo scheduler, cross-checking every stage"
        " differentially.  Every fourth run additionally executes a"
        " composed multi-fault chaos plan.  The report is byte-identical"
        " across repeated runs of the same campaign.  Exits 1 when any"
        " run produced a bug verdict.",
    )
    p.add_argument("--seed", type=int, default=0, help="campaign seed")
    p.add_argument(
        "--runs", type=int, default=20,
        help="number of generated machines (default: 20)",
    )
    from repro.fuzz.mdlgen import PROFILES as _fuzz_profiles

    p.add_argument(
        "--profile",
        default="mixed",
        choices=tuple(sorted(_fuzz_profiles)),
        help="generator profile (default: mixed)",
    )
    p.add_argument(
        "--budget", type=int, metavar="UNITS",
        help="work-unit budget per oracle pipeline stage (exceeded stages"
        " become handled verdicts, not bugs)",
    )
    p.add_argument(
        "--shrink", action="store_true",
        help="minimize every bug to a local-minimum repro machine",
    )
    p.add_argument(
        "--bundles", metavar="DIR",
        help="with --shrink: write checksummed repro bundles under DIR",
    )
    p.add_argument(
        "--plans-every", type=int, default=4, metavar="N",
        help="run a composed chaos plan every N-th run (0 disables;"
        " default: 4)",
    )
    p.add_argument(
        "--out", metavar="FILE",
        help="write the campaign report as a checksummed JSON artifact",
    )
    _add_observability_flags(p)
    p.set_defaults(func=_cmd_fuzz)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except KeyboardInterrupt:
        # Atomic artifact writes guarantee no partial files survive the
        # interrupt; 130 = 128 + SIGINT, the shell convention.
        print("interrupted", file=sys.stderr)
        return 130
    except BudgetExceeded as exc:
        # Distinct from usage errors (2) and lint/verify findings (1) so
        # callers can retry with a larger budget or --fallback.
        print("budget exceeded: %s" % exc, file=sys.stderr)
        return 3
    except ReproError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream closed the pipe (e.g. `repro bench report | head`).
        # Point stdout at devnull so the interpreter's shutdown flush
        # doesn't raise again; 141 = 128 + SIGPIPE, the shell convention.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 141


if __name__ == "__main__":
    sys.exit(main())
