"""repro — reduced multipipeline machine descriptions.

A production-quality reproduction of Eichenberger & Davidson, *A Reduced
Multipipeline Machine Description that Preserves Scheduling Constraints*
(PLDI 1996): exact, automated reduction of reservation-table machine
descriptions, contention query modules (discrete / bitvector / modulo),
finite-state-automata baselines, and an Iterative Modulo Scheduler that
evaluates them.

Quickstart
----------
>>> from repro import example_machine, reduce_machine
>>> reduction = reduce_machine(example_machine())
>>> reduction.reduced.num_resources
2
"""

from repro.core import (
    ForbiddenLatencyMatrix,
    MachineBuilder,
    MachineDescription,
    RES_USES,
    Reduction,
    ReservationTable,
    WORD_USES,
    assert_equivalent,
    matrices_equal,
    reduce_machine,
)
from repro.machines.example import example_machine

__version__ = "1.0.0"

__all__ = [
    "ForbiddenLatencyMatrix",
    "MachineBuilder",
    "MachineDescription",
    "RES_USES",
    "Reduction",
    "ReservationTable",
    "WORD_USES",
    "assert_equivalent",
    "example_machine",
    "matrices_equal",
    "reduce_machine",
    "__version__",
]
