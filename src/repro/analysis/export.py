"""Exporters: Graphviz dot for dependence graphs, markdown for machines.

Compiler developers live in dumps; these are the two formats worth
having: ``dot`` renderings of dependence graphs (critical-path debugging
of the scheduler) and markdown tables of machine descriptions and
reductions (for design documents like this repository's EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.machine import MachineDescription
from repro.scheduler.ddg import DependenceGraph

_KIND_STYLE = {
    "flow": "solid",
    "anti": "dashed",
    "output": "dotted",
}


def graph_to_dot(
    graph: DependenceGraph,
    times: Optional[Dict[str, int]] = None,
    ii: Optional[int] = None,
) -> str:
    """Graphviz rendering of a dependence graph.

    With ``times`` (a schedule), nodes are annotated and ranked by issue
    cycle; loop-carried edges are drawn as constraint-free back edges
    labeled with their distance.
    """
    lines = ["digraph %s {" % _dot_ident(graph.name)]
    lines.append('  rankdir=TB; node [shape=box, fontname="monospace"];')
    for op in graph.operations():
        label = "%s\\n%s" % (op.name, op.opcode)
        if times is not None and op.name in times:
            slot = ""
            if ii:
                slot = " (slot %d)" % (times[op.name] % ii)
            label += "\\nt=%d%s" % (times[op.name], slot)
        lines.append(
            '  %s [label="%s"];' % (_dot_ident(op.name), label)
        )
    for edge in graph.edges():
        attributes = ['style=%s' % _KIND_STYLE.get(edge.kind, "solid")]
        label = str(edge.latency)
        if edge.distance:
            label += " / d%d" % edge.distance
            attributes.append("constraint=false")
            attributes.append("color=red")
        attributes.append('label="%s"' % label)
        lines.append(
            "  %s -> %s [%s];"
            % (
                _dot_ident(edge.src),
                _dot_ident(edge.dst),
                ", ".join(attributes),
            )
        )
    lines.append("}")
    return "\n".join(lines)


def _dot_ident(name: str) -> str:
    """Quote a name into a safe dot identifier."""
    return '"%s"' % name.replace('"', "'")


def machine_to_markdown(machine: MachineDescription) -> str:
    """Markdown table of a machine's reservation tables.

    One row per operation; columns are cycles; each cell lists the
    resources reserved in that cycle (blank when idle).
    """
    width = machine.max_table_length
    header = (
        "| operation | "
        + " | ".join("c%d" % c for c in range(width))
        + " |"
    )
    divider = "|" + "---|" * (width + 1)
    lines = [
        "### %s — %d operations, %d resources, %d usages"
        % (
            machine.name,
            machine.num_operations,
            machine.num_resources,
            machine.total_usages,
        ),
        "",
        header,
        divider,
    ]
    for op, table in machine.items():
        cells = []
        for cycle in range(width):
            holders = [
                r for r in table.resources if table.uses(r, cycle)
            ]
            cells.append("<br>".join(holders))
        lines.append("| %s | %s |" % (op, " | ".join(cells)))
    groups = machine.alternatives
    if groups:
        lines.append("")
        for base in sorted(groups):
            lines.append(
                "* `%s` = %s"
                % (base, " / ".join("`%s`" % v for v in groups[base]))
            )
    return "\n".join(lines)
