"""II sweeps: throughput vs register pressure over candidate intervals.

A modulo scheduler usually wants the smallest feasible II, but larger
IIs reduce value overlap and thus register pressure — the trade-off
behind stage scheduling.  :func:`ii_sweep` schedules a loop at a range
of fixed IIs and tabulates the cost curve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.machine import MachineDescription
from repro.errors import ScheduleError
from repro.scheduler.lifetimes import max_live, register_requirement
from repro.scheduler.modulo import IterativeModuloScheduler
from repro.scheduler.ddg import DependenceGraph


@dataclass(frozen=True)
class SweepPoint:
    """Scheduling outcome at one candidate II."""

    ii: int
    feasible: bool
    decisions_per_op: Optional[float]
    max_live: Optional[int]
    registers: Optional[int]


def ii_sweep(
    machine: MachineDescription,
    graph: DependenceGraph,
    extra: int = 4,
    scheduler: Optional[IterativeModuloScheduler] = None,
) -> List[SweepPoint]:
    """Schedule ``graph`` at each II in [MII, MII + extra].

    Each candidate II is attempted in isolation (``max_ii_slack=0``): a
    failed attempt is reported as infeasible at that II rather than
    silently escalating.
    """
    base = scheduler or IterativeModuloScheduler(machine)
    probe = IterativeModuloScheduler(
        machine,
        representation=base.representation,
        word_cycles=base.word_cycles,
        budget_ratio=base.budget_ratio,
        max_ii_slack=base.max_ii_slack,
        matrix=base.matrix,
    )
    mii = base.schedule(graph).mii
    points: List[SweepPoint] = []
    for ii in range(mii, mii + extra + 1):
        pinned = IterativeModuloScheduler(
            machine,
            representation=base.representation,
            word_cycles=base.word_cycles,
            budget_ratio=base.budget_ratio,
            max_ii_slack=0,
            matrix=probe.matrix,
        )
        # Pin the II by inflating the recurrence bound: schedule with a
        # graph-level trick is intrusive, so instead try and catch.
        try:
            result = _schedule_at_exact_ii(pinned, graph, ii)
        except ScheduleError:
            points.append(
                SweepPoint(ii, False, None, None, None)
            )
            continue
        points.append(
            SweepPoint(
                ii=ii,
                feasible=True,
                decisions_per_op=result.decisions_per_op,
                max_live=max_live(result),
                registers=register_requirement(result),
            )
        )
    return points


def _schedule_at_exact_ii(scheduler, graph, ii):
    """Run one IMS attempt pinned at ``ii``."""
    from repro.query.work import WorkCounters
    from repro.scheduler.modulo import ModuloScheduleResult

    graph.validate()
    work = WorkCounters()
    outcome = scheduler._attempt(graph, ii, work)
    if not outcome.stats.succeeded:
        raise ScheduleError(
            "no schedule found at II=%d for %r" % (ii, graph.name)
        )
    result = ModuloScheduleResult(
        graph=graph,
        machine=scheduler.machine,
        ii=ii,
        mii=ii,
        times=outcome.times,
        chosen_opcodes=outcome.chosen,
        attempts=[outcome.stats],
        work=work,
    )
    scheduler._verify(result)
    return result


def sweep_report(points: List[SweepPoint]) -> str:
    """Tabulate a sweep."""
    lines = [
        "  %4s %9s %14s %9s %10s"
        % ("II", "feasible", "decisions/op", "MaxLive", "registers")
    ]
    for p in points:
        if not p.feasible:
            lines.append("  %4d %9s %14s %9s %10s" % (p.ii, "no", "-", "-", "-"))
            continue
        lines.append(
            "  %4d %9s %14.2f %9d %10d"
            % (p.ii, "yes", p.decisions_per_op, p.max_live, p.registers)
        )
    return "\n".join(lines)
