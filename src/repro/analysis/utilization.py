"""Resource-utilization analysis of schedules.

For a modulo schedule the steady-state kernel repeats every II cycles,
so each resource's utilization is (occupied MRT slots) / II; the
resources at 100% are exactly the ResMII-binding bottlenecks — the rows
an architect would replicate next.  For block schedules utilization is
measured over the schedule length.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.machine import MachineDescription


@dataclass(frozen=True)
class ResourceUtilization:
    """Occupancy of one resource row."""

    resource: str
    busy: int
    capacity: int

    @property
    def fraction(self) -> float:
        if not self.capacity:
            return 0.0
        return self.busy / self.capacity

    @property
    def saturated(self) -> bool:
        return self.busy >= self.capacity


def utilization(
    machine: MachineDescription,
    times: Dict[str, int],
    chosen_opcodes: Dict[str, str],
    ii: Optional[int] = None,
) -> List[ResourceUtilization]:
    """Per-resource occupancy of a schedule, most utilized first.

    ``ii`` selects the modulo (kernel) interpretation; without it the
    capacity is the flat schedule span.
    """
    busy: Dict[str, set] = {}
    max_cycle = 0
    for name, time in times.items():
        opcode = chosen_opcodes[name]
        for resource, use in machine.table(opcode).iter_usages():
            cycle = time + use
            if ii is not None:
                cycle %= ii
            busy.setdefault(resource, set()).add(cycle)
            max_cycle = max(max_cycle, cycle)
    capacity = ii if ii is not None else max_cycle + 1
    rows = [
        ResourceUtilization(
            resource=resource, busy=len(cycles), capacity=capacity
        )
        for resource, cycles in busy.items()
    ]
    rows.sort(key=lambda r: (-r.fraction, r.resource))
    return rows


def bottlenecks(
    machine: MachineDescription,
    times: Dict[str, int],
    chosen_opcodes: Dict[str, str],
    ii: int,
) -> List[str]:
    """Resources with 100% kernel occupancy — the rows pinning II."""
    return [
        row.resource
        for row in utilization(machine, times, chosen_opcodes, ii=ii)
        if row.saturated
    ]


def utilization_report(
    machine: MachineDescription,
    times: Dict[str, int],
    chosen_opcodes: Dict[str, str],
    ii: Optional[int] = None,
    top: int = 12,
) -> str:
    """Bar-chart style utilization summary."""
    rows = utilization(machine, times, chosen_opcodes, ii=ii)
    lines = []
    for row in rows[:top]:
        bar = "#" * int(round(20 * row.fraction))
        lines.append(
            "  %-12s %3d/%-3d %5.0f%% |%-20s|"
            % (row.resource, row.busy, row.capacity,
               100 * row.fraction, bar)
        )
    if len(rows) > top:
        lines.append("  ... and %d more resources" % (len(rows) - top))
    return "\n".join(lines)
