"""Analysis utilities: redundancy pruning, reports, and exporters."""

from repro.analysis.explain import (
    EXPLAIN_SCHEMA_NAME,
    EXPLAIN_SCHEMA_VERSION,
    build_explain_report,
    explain_loop,
    render_explain_html,
    render_explain_text,
    validate_explain_report,
)
from repro.analysis.export import graph_to_dot, machine_to_markdown
from repro.analysis.gantt import has_collision, occupancy_chart
from repro.analysis.ii_sweep import SweepPoint, ii_sweep, sweep_report
from repro.analysis.utilization import (
    ResourceUtilization,
    bottlenecks,
    utilization,
    utilization_report,
)
from repro.analysis.redundancy import (
    drop_resources,
    manually_optimize,
    redundant_resources,
)
from repro.analysis.report import (
    describe_machine,
    describe_reduction,
    diff_constraints,
)

__all__ = [
    "EXPLAIN_SCHEMA_NAME",
    "EXPLAIN_SCHEMA_VERSION",
    "ResourceUtilization",
    "SweepPoint",
    "bottlenecks",
    "build_explain_report",
    "explain_loop",
    "render_explain_html",
    "render_explain_text",
    "validate_explain_report",
    "describe_machine",
    "describe_reduction",
    "diff_constraints",
    "drop_resources",
    "graph_to_dot",
    "has_collision",
    "machine_to_markdown",
    "occupancy_chart",
    "manually_optimize",
    "ii_sweep",
    "redundant_resources",
    "sweep_report",
    "utilization",
    "utilization_report",
]
