"""Schedule explanation reports (``repro explain``).

Answers the question benchmarks cannot: *why* did a loop schedule at
the II it did?  For every loop the builder

* attributes MII to its binding constraint
  (:func:`~repro.scheduler.mii.mii_attribution` — recurrence, a
  saturated resource, or an opcode's self-forbidden latencies),
* replays the iterative modulo scheduler under a recording
  :class:`~repro.obs.ledger.DecisionLedger`, and
* rolls the decision records up into per-II failure narratives,
  per-resource pressure histograms, and blame counts
  (:mod:`repro.obs.provenance`).

The result is one schema-versioned document, ``repro-explain-report``
v1, rendered as text, JSON, or a self-contained HTML page whose MRT
occupancy charts come from :func:`~repro.analysis.gantt.occupancy_chart`.
"""

from __future__ import annotations

import html as _html
from typing import Dict, List, Optional, Sequence

from repro.analysis.gantt import occupancy_chart
from repro.core.machine import MachineDescription
from repro.errors import ScheduleError
from repro.obs import ledger as obs_ledger
from repro.obs import provenance
from repro.scheduler.ddg import DependenceGraph
from repro.scheduler.mii import mii_attribution
from repro.scheduler.modulo import IterativeModuloScheduler

EXPLAIN_SCHEMA_NAME = "repro-explain-report"
EXPLAIN_SCHEMA_VERSION = 1

#: Ledger records kept per loop in the report (newest last).
TAIL_LIMIT = 40


def _describe_pin(pinned: Dict[str, object]) -> str:
    """One sentence naming the MII-binding constraint."""
    kind = pinned.get("kind")
    if kind == "recurrence":
        return "pinned by a dependence recurrence (RecMII=%s)" % (
            pinned.get("rec_mii"),
        )
    if kind == "resource":
        return "pinned by resource %s (%s usages/iteration)" % (
            pinned.get("resource"), pinned.get("usages"),
        )
    return "pinned by self-contention of %s (min feasible II=%s)" % (
        pinned.get("opcode"), pinned.get("min_ii"),
    )


def explain_loop(
    machine: MachineDescription,
    graph: DependenceGraph,
    representation: Optional[str] = None,
    word_cycles: int = 1,
) -> Dict[str, object]:
    """Explain one loop: MII attribution plus a ledger-replayed schedule.

    The replay runs under its own recording ledger, so the returned
    provenance never mixes with (and never requires) an ambient one.
    Scheduler failure is part of the story, not an error: the entry
    carries ``succeeded: false``, the raise's message, and the ledger
    tail explaining the final attempt.
    """
    kwargs = {}
    if representation is not None:
        kwargs["representation"] = representation
        kwargs["word_cycles"] = word_cycles
    scheduler = IterativeModuloScheduler(machine, **kwargs)
    entry: Dict[str, object] = {
        "loop": graph.name,
        "ops": graph.num_operations,
    }
    try:
        mii_info = mii_attribution(machine, graph)
    except ScheduleError as exc:
        # The graph itself is unschedulable (e.g. a zero-distance
        # dependence cycle): no MII exists, but the report still gets a
        # failure entry instead of aborting the whole document.
        entry.update(
            mii={
                "mii": None,
                "res_mii": None,
                "rec_mii": None,
                "pinned_by": {"kind": "invalid"},
            },
            mii_narrative="MII undefined: %s" % exc,
            succeeded=False,
            ii=None,
            optimal=False,
            error=str(exc),
            ledger_tail=(exc.ledger_tail or [])[-TAIL_LIMIT:],
            records=0,
            attempts=[],
            narrative=[],
            pressure={},
            blame={},
            evictions={},
        )
        return entry
    entry.update(
        mii=mii_info,
        mii_narrative=_describe_pin(mii_info["pinned_by"]),
    )
    with obs_ledger.recording() as ledger:
        try:
            result = scheduler.schedule(graph)
        except ScheduleError as exc:
            entry.update(
                succeeded=False,
                ii=None,
                optimal=False,
                error=str(exc),
                ledger_tail=(exc.ledger_tail or [])[-TAIL_LIMIT:],
            )
        else:
            entry.update(
                succeeded=True,
                ii=result.ii,
                optimal=result.optimal,
                decisions_per_op=round(result.decisions_per_op, 2),
                placements=[
                    [name, result.chosen_opcodes[name], time]
                    for name, time in sorted(result.times.items())
                ],
            )
    rollup = provenance.summarize(ledger)
    entry.update(
        records=rollup["records"],
        attempts=rollup["attempts"],
        narrative=rollup["narrative"],
        pressure=rollup["pressure"],
        blame=rollup["blame"],
        evictions=rollup["evictions"],
    )
    return entry


def build_explain_report(
    machine: MachineDescription,
    graphs: Sequence[DependenceGraph],
    representation: Optional[str] = None,
    word_cycles: int = 1,
) -> Dict[str, object]:
    """The full ``repro-explain-report`` v1 document for ``graphs``."""
    loops = [
        explain_loop(
            machine, graph,
            representation=representation, word_cycles=word_cycles,
        )
        for graph in graphs
    ]
    scheduled = [e for e in loops if e["succeeded"]]
    return {
        "schema": {
            "name": EXPLAIN_SCHEMA_NAME,
            "version": EXPLAIN_SCHEMA_VERSION,
        },
        "machine": machine.name,
        "representation": representation,
        "loops": loops,
        "summary": {
            "loops": len(loops),
            "scheduled": len(scheduled),
            "optimal": sum(1 for e in scheduled if e["optimal"]),
            "failed": len(loops) - len(scheduled),
        },
    }


def validate_explain_report(document: Dict[str, object]) -> None:
    """Raise ``ValueError`` unless ``document`` is a v1 explain report."""
    schema = document.get("schema")
    if not isinstance(schema, dict) or (
        schema.get("name") != EXPLAIN_SCHEMA_NAME
        or schema.get("version") != EXPLAIN_SCHEMA_VERSION
    ):
        raise ValueError(
            "not a %s v%d document: schema=%r"
            % (EXPLAIN_SCHEMA_NAME, EXPLAIN_SCHEMA_VERSION, schema)
        )
    for key in ("machine", "loops", "summary"):
        if key not in document:
            raise ValueError("explain report missing %r" % key)
    for entry in document["loops"]:
        for key in ("loop", "mii", "succeeded", "attempts", "narrative"):
            if key not in entry:
                raise ValueError("explain loop entry missing %r" % key)


def _loop_chart(
    machine: MachineDescription, entry: Dict[str, object]
) -> Optional[str]:
    """MRT occupancy chart of a scheduled loop, or ``None``."""
    if not entry.get("succeeded") or not entry.get("placements"):
        return None
    placements = [
        (opcode, time) for _name, opcode, time in entry["placements"]
    ]
    return occupancy_chart(machine, placements, modulo=entry["ii"])


def render_explain_text(
    document: Dict[str, object],
    machine: Optional[MachineDescription] = None,
) -> str:
    """Terminal rendering; passing ``machine`` adds MRT charts."""
    lines: List[str] = []
    summary = document["summary"]
    lines.append(
        "explain: %s — %d loops, %d at MII, %d failed"
        % (
            document["machine"], summary["loops"],
            summary["optimal"], summary["failed"],
        )
    )
    for entry in document["loops"]:
        mii = entry["mii"]
        lines.append("")
        lines.append(
            "%s (%d ops): MII=%s (ResMII=%s, RecMII=%s), %s"
            % (
                entry["loop"], entry["ops"], mii["mii"],
                mii["res_mii"], mii["rec_mii"], entry["mii_narrative"],
            )
        )
        for sentence in entry["narrative"]:
            lines.append("  " + sentence)
        if entry["succeeded"]:
            lines.append(
                "  scheduled at II=%d%s"
                % (entry["ii"], " (optimal)" if entry["optimal"] else "")
            )
        else:
            lines.append("  FAILED: %s" % entry["error"])
        top_blame = list(entry["blame"].items())[:3]
        if top_blame:
            lines.append(
                "  most-blamed resources: "
                + ", ".join(
                    "%s x%d (%s)"
                    % (
                        resource, count,
                        provenance.format_cycle_ranges(
                            int(c) for c in entry["pressure"].get(resource, {})
                        ),
                    )
                    for resource, count in top_blame
                )
            )
        if machine is not None:
            chart = _loop_chart(machine, entry)
            if chart is not None:
                lines.append("")
                lines.extend("  " + row for row in chart.splitlines())
    return "\n".join(lines)


def render_explain_html(
    document: Dict[str, object],
    machine: Optional[MachineDescription] = None,
) -> str:
    """Self-contained HTML page: narratives, blame tables, MRT charts."""
    esc = _html.escape
    summary = document["summary"]
    parts: List[str] = [
        "<!DOCTYPE html>",
        "<html><head><meta charset='utf-8'>",
        "<title>repro explain — %s</title>" % esc(str(document["machine"])),
        "<style>",
        "body{font-family:sans-serif;margin:2em;max-width:70em}",
        "pre{background:#f4f4f4;padding:.8em;overflow-x:auto}",
        "table{border-collapse:collapse;margin:.5em 0}",
        "td,th{border:1px solid #999;padding:.2em .6em;text-align:left}",
        ".fail{color:#a00}.ok{color:#070}",
        "</style></head><body>",
        "<h1>repro explain — %s</h1>" % esc(str(document["machine"])),
        "<p>%d loops, %d scheduled, %d at MII, %d failed.</p>"
        % (
            summary["loops"], summary["scheduled"],
            summary["optimal"], summary["failed"],
        ),
    ]
    for entry in document["loops"]:
        mii = entry["mii"]
        parts.append("<h2>%s</h2>" % esc(str(entry["loop"])))
        parts.append(
            "<p>%d ops — MII=%s (ResMII=%s, RecMII=%s), %s.</p>"
            % (
                entry["ops"], mii["mii"], mii["res_mii"],
                mii["rec_mii"], esc(str(entry["mii_narrative"])),
            )
        )
        if entry["succeeded"]:
            parts.append(
                "<p class='ok'>scheduled at II=%d%s</p>"
                % (entry["ii"], " (optimal)" if entry["optimal"] else "")
            )
        else:
            parts.append(
                "<p class='fail'>FAILED: %s</p>" % esc(str(entry["error"]))
            )
        if entry["narrative"]:
            parts.append("<ul>")
            parts.extend(
                "<li>%s</li>" % esc(str(s)) for s in entry["narrative"]
            )
            parts.append("</ul>")
        if entry["blame"]:
            parts.append(
                "<table><tr><th>resource</th><th>blamed</th>"
                "<th>saturated</th></tr>"
            )
            for resource, count in list(entry["blame"].items())[:10]:
                cycles = provenance.format_cycle_ranges(
                    int(c) for c in entry["pressure"].get(resource, {})
                )
                parts.append(
                    "<tr><td>%s</td><td>%d</td><td>%s</td></tr>"
                    % (esc(str(resource)), count, esc(cycles))
                )
            parts.append("</table>")
        if machine is not None:
            chart = _loop_chart(machine, entry)
            if chart is not None:
                parts.append("<pre>%s</pre>" % esc(chart))
    parts.append("</body></html>")
    return "\n".join(parts)


__all__ = [
    "EXPLAIN_SCHEMA_NAME",
    "EXPLAIN_SCHEMA_VERSION",
    "build_explain_report",
    "explain_loop",
    "render_explain_html",
    "render_explain_text",
    "validate_explain_report",
]
