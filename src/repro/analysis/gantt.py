"""ASCII occupancy charts (Gantt views) of schedules.

Renders a resource x cycle grid from any set of placements — block
schedules, flat traces, expanded software pipelines — with one letter
per operation, so contention structure and pipeline drain are visible at
a glance in a terminal or a test log.
"""

from __future__ import annotations

from string import ascii_lowercase, ascii_uppercase, digits
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.machine import MachineDescription

_GLYPHS = ascii_uppercase + ascii_lowercase + digits


def occupancy_chart(
    machine: MachineDescription,
    placements: Sequence[Tuple[str, int]],
    modulo: Optional[int] = None,
    resources: Optional[Sequence[str]] = None,
) -> str:
    """Render placements as a resource/cycle occupancy grid.

    Each placement gets a glyph (A, B, C, ...; reused cyclically past
    62 operations); a ``*`` marks a slot claimed by more than one
    operation — which a legal schedule never shows.

    Parameters
    ----------
    machine:
        Description whose reservation tables define the occupancy.
    placements:
        ``(operation, issue cycle)`` pairs.
    modulo:
        Fold cycles into a kernel of this length (MRT view).
    resources:
        Row subset/order; defaults to the rows actually used.
    """
    grid: Dict[Tuple[str, int], str] = {}
    legend: List[str] = []
    min_cycle = 0
    max_cycle = 0
    for index, (op, issue) in enumerate(placements):
        glyph = _GLYPHS[index % len(_GLYPHS)]
        legend.append("%s=%s@%d" % (glyph, op, issue))
        for resource, use in machine.table(op).iter_usages():
            cycle = issue + use
            if modulo is not None:
                cycle %= modulo
            slot = (resource, cycle)
            grid[slot] = "*" if slot in grid else glyph
            min_cycle = min(min_cycle, cycle)
            max_cycle = max(max_cycle, cycle)

    if modulo is not None:
        min_cycle, max_cycle = 0, modulo - 1
    if resources is None:
        used = {resource for resource, _cycle in grid}
        resources = [r for r in machine.resources if r in used]
    name_width = max((len(r) for r in resources), default=0)

    header = " " * name_width + " |" + "".join(
        str(c % 10) for c in range(min_cycle, max_cycle + 1)
    )
    lines = [header]
    for resource in resources:
        cells = "".join(
            grid.get((resource, c), ".")
            for c in range(min_cycle, max_cycle + 1)
        )
        lines.append(resource.ljust(name_width) + " |" + cells)
    if legend:
        lines.append("")
        lines.append("legend: " + "  ".join(legend))
    return "\n".join(lines)


def has_collision(
    machine: MachineDescription,
    placements: Sequence[Tuple[str, int]],
    modulo: Optional[int] = None,
) -> bool:
    """True when the chart would contain a ``*`` (double booking)."""
    seen = set()
    for op, issue in placements:
        for resource, use in machine.table(op).iter_usages():
            cycle = issue + use
            if modulo is not None:
                cycle %= modulo
            slot = (resource, cycle)
            if slot in seen:
                return True
            seen.add(slot)
    return False
