"""Human-readable reports over machine descriptions and reductions.

The paper motivates automated reduction partly as a *development-process*
tool: machine descriptions change constantly while the micro-architecture
is designed, and every change must be re-reduced and re-validated.  These
reports are the artifacts such a workflow prints in CI: a description
summary, a reduction summary, and a constraint diff between two
description versions.
"""

from __future__ import annotations

from typing import List

from repro.core.forbidden import ForbiddenLatencyMatrix
from repro.core.machine import MachineDescription
from repro.core.reduce import Reduction
from repro.stats import average_usages_per_op, average_word_usages


def describe_machine(machine: MachineDescription) -> str:
    """Multi-line summary of one description's key numbers."""
    matrix = ForbiddenLatencyMatrix.from_machine(machine)
    classes = matrix.operation_classes()
    lines = [
        "machine %s" % machine.name,
        "  operations:          %d (%d classes)"
        % (machine.num_operations, len(classes)),
        "  resources:           %d" % machine.num_resources,
        "  usages:              %d (%.1f per op)"
        % (machine.total_usages, average_usages_per_op(machine)),
        "  forbidden latencies: %d (max %d)"
        % (matrix.instance_count, matrix.max_latency),
        "  longest table:       %d cycles" % machine.max_table_length,
    ]
    groups = machine.alternatives
    if groups:
        lines.append(
            "  alternative groups:  %d (%s)"
            % (len(groups), ", ".join(sorted(groups)))
        )
    merged = [c for c in classes if len(c) > 1]
    if merged:
        lines.append(
            "  merged classes:      %s"
            % "; ".join("=".join(c) for c in merged)
        )
    return "\n".join(lines)


def describe_reduction(reduction: Reduction) -> str:
    """Reduction before/after report with the Tables 1-4 metrics."""
    original = reduction.original
    reduced = reduction.reduced
    k = reduction.word_cycles
    lines = [
        reduction.summary(),
        "  objective:        %s (k=%d)" % (reduction.objective, k),
        "  generating set:   %d resources (%d after pruning)"
        % (len(reduction.generating_set), len(reduction.pruned_set)),
        "  usages/op:        %.1f -> %.1f"
        % (average_usages_per_op(original), average_usages_per_op(reduced)),
        "  word usages/op:   %.1f -> %.1f (k=%d)"
        % (
            average_word_usages(original, k),
            average_word_usages(reduced, k),
            k,
        ),
        "  state bits/cycle: %d -> %d (%.0f%%)"
        % (
            original.num_resources,
            reduced.num_resources,
            100.0 * reduced.num_resources / max(1, original.num_resources),
        ),
    ]
    return "\n".join(lines)


def diff_constraints(
    first: MachineDescription, second: MachineDescription, limit: int = 20
) -> str:
    """Scheduling-constraint diff between two description versions.

    Empty-diff output states the equivalence; otherwise each differing
    operation pair is listed with the latencies unique to each side —
    the report a machine-description CI gate would print.
    """
    matrix_a = ForbiddenLatencyMatrix.from_machine(first)
    matrix_b = ForbiddenLatencyMatrix.from_machine(second)
    diffs = matrix_a.differences(matrix_b)
    if not diffs:
        return (
            "EQUIVALENT: %r and %r encode identical scheduling constraints"
            % (first.name, second.name)
        )
    lines: List[str] = [
        "NOT EQUIVALENT: %d operation pairs differ between %r and %r"
        % (len(diffs), first.name, second.name)
    ]
    for op_x, op_y, only_a, only_b in diffs[:limit]:
        if only_a:
            lines.append(
                "  %s after %s: %s forbidden only in %r"
                % (op_x, op_y, sorted(only_a), first.name)
            )
        if only_b:
            lines.append(
                "  %s after %s: %s forbidden only in %r"
                % (op_x, op_y, sorted(only_b), second.name)
            )
    if len(diffs) > limit:
        lines.append("  ... and %d more pairs" % (len(diffs) - limit))
    return "\n".join(lines)
