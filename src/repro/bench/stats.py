"""Robust statistics for noisy wall-time samples.

Benchmark wall times on shared hardware are heavy-tailed: one page fault
or GC pause can double a repetition.  Means and standard deviations are
dominated by those outliers, so the observatory summarizes every sample
set with the *median* and the *median absolute deviation* (MAD), and
derives uncertainty from a seeded percentile bootstrap of the median —
deterministic (fixed resample seed), distribution-free, and honest about
small sample counts.

The comparator (:mod:`repro.bench.compare`) only lets wall time gate a
build when two runs' bootstrap confidence intervals do not overlap; every
deterministic metric (work units) gates on a plain ratio instead.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Sequence, Tuple

#: Bootstrap resamples behind each confidence interval.  400 keeps the
#: percentile estimate stable to ~1% at the default confidence while
#: costing well under a millisecond for benchmark-sized sample sets.
BOOTSTRAP_RESAMPLES = 400

#: Two-sided confidence level of the bootstrap intervals.
BOOTSTRAP_CONFIDENCE = 0.95


def median(samples: Sequence[float]) -> float:
    """The sample median (average of the two middle order statistics)."""
    if not samples:
        raise ValueError("median of an empty sample set")
    ordered = sorted(samples)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def mad(samples: Sequence[float]) -> float:
    """Median absolute deviation from the median (0.0 for n < 2)."""
    if len(samples) < 2:
        return 0.0
    center = median(samples)
    return median([abs(s - center) for s in samples])


def bootstrap_ci(
    samples: Sequence[float],
    confidence: float = BOOTSTRAP_CONFIDENCE,
    resamples: int = BOOTSTRAP_RESAMPLES,
    seed: int = 0,
) -> Tuple[float, float]:
    """Percentile-bootstrap confidence interval for the median.

    Deterministic for a given ``seed``.  A single sample (or a
    zero-variance set) collapses to a point interval, which the
    comparator treats as "no evidence of a difference" unless the two
    point medians themselves differ.
    """
    if not samples:
        raise ValueError("bootstrap_ci of an empty sample set")
    if len(samples) == 1:
        return float(samples[0]), float(samples[0])
    rng = random.Random(seed)
    n = len(samples)
    medians = []
    for _ in range(resamples):
        resample = [samples[rng.randrange(n)] for _ in range(n)]
        medians.append(median(resample))
    medians.sort()
    alpha = (1.0 - confidence) / 2.0
    low_index = int(alpha * (resamples - 1))
    high_index = int((1.0 - alpha) * (resamples - 1))
    return medians[low_index], medians[high_index]


def intervals_overlap(
    first: Tuple[float, float], second: Tuple[float, float]
) -> bool:
    """Do two closed intervals intersect?"""
    return first[0] <= second[1] and second[0] <= first[1]


def summarize(samples: Sequence[float], seed: int = 0) -> Dict[str, object]:
    """The stored summary of one sample set (see ``docs/benchmarking.md``).

    Keeps the raw samples alongside the robust aggregates so a later,
    smarter comparator can re-analyze checked-in baselines without
    rerunning them.
    """
    low, high = bootstrap_ci(samples, seed=seed)
    return {
        "n": len(samples),
        "samples": [float(s) for s in samples],
        "median": median(samples),
        "mad": mad(samples),
        "ci_low": low,
        "ci_high": high,
        "min": float(min(samples)),
        "max": float(max(samples)),
    }


def interval_of(summary: Dict[str, object]) -> Optional[Tuple[float, float]]:
    """The (ci_low, ci_high) interval of a stored summary, if complete."""
    low = summary.get("ci_low")
    high = summary.get("ci_high")
    if low is None or high is None:
        return None
    return float(low), float(high)


__all__ = [
    "BOOTSTRAP_CONFIDENCE",
    "BOOTSTRAP_RESAMPLES",
    "bootstrap_ci",
    "interval_of",
    "intervals_overlap",
    "mad",
    "median",
    "summarize",
]
