"""The benchmark observatory (``repro.bench``).

Layered on :mod:`repro.obs`, this package turns single profiling
snapshots into a *perf trajectory*: schema-versioned result documents
(``repro-bench-result`` v1) recording deterministic work-unit counts,
robust wall-time statistics, per-phase span attribution, and schedule
quality per run; a noise-immune comparator (deterministic metrics gate
hard, wall time only when bootstrap intervals disagree); and
differential profiling that explains *where* a regression landed.
Driven by ``repro bench run | compare | report`` — see
``docs/benchmarking.md``.

Like :mod:`repro.obs`, the package root stays clear of the scheduler
stack: the runner (which executes the full reduce + schedule pipeline)
lives in :mod:`repro.bench.runner` and is imported on demand.
"""

from repro.bench.compare import (
    IMPROVEMENT,
    MISSING_BASE,
    MISSING_NEW,
    NEUTRAL,
    REGRESSION,
    CompareConfig,
    Comparison,
    MetricDelta,
    compare_metric_maps,
    compare_results,
    ensure_comparable,
)
from repro.bench.diffprof import (
    CounterDelta,
    PhaseDelta,
    diff_case,
    diff_profiles,
    render_diff_text,
)
from repro.bench.report import render_comparison_text, render_result_text
from repro.bench.result import (
    RESULT_SCHEMA_NAME,
    RESULT_SCHEMA_VERSION,
    BenchCase,
    BenchResult,
    default_meta,
    git_sha,
    load_result,
    save_result,
)
from repro.bench.stats import (
    bootstrap_ci,
    interval_of,
    intervals_overlap,
    mad,
    median,
    summarize,
)

__all__ = [
    "IMPROVEMENT",
    "MISSING_BASE",
    "MISSING_NEW",
    "NEUTRAL",
    "REGRESSION",
    "RESULT_SCHEMA_NAME",
    "RESULT_SCHEMA_VERSION",
    "BenchCase",
    "BenchResult",
    "CompareConfig",
    "Comparison",
    "CounterDelta",
    "MetricDelta",
    "PhaseDelta",
    "bootstrap_ci",
    "compare_metric_maps",
    "compare_results",
    "default_meta",
    "diff_case",
    "diff_profiles",
    "ensure_comparable",
    "git_sha",
    "interval_of",
    "intervals_overlap",
    "load_result",
    "mad",
    "median",
    "render_comparison_text",
    "render_diff_text",
    "render_result_text",
    "save_result",
    "summarize",
]
