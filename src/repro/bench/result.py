"""The schema-versioned benchmark result store (``repro-bench-result`` v1).

One :class:`BenchResult` records everything a later comparison needs,
per ``machine/representation`` case:

* **work** — deterministic work-unit and event counters (the
  :class:`~repro.query.work.WorkCounters` currency plus Algorithm 1 rule
  firings, scheduling decisions, ...).  Bit-identical across repeated
  runs on the same commit; any drift is recorded per case under
  ``nondeterministic`` and excluded from gating.
* **wall** — robust wall-time statistics over N repetitions (median,
  MAD, seeded bootstrap confidence interval; see
  :mod:`repro.bench.stats`).
* **phases** — per-span inclusive and exclusive (self) time summaries,
  the input to differential profiling.
* **quality** — schedule quality: loops at MII, total achieved II vs the
  total MII lower bound.

Results round-trip through the crash-safe artifact store
(:mod:`repro.resilience.artifacts`): atomic writes plus a SHA-256
sidecar, so a corrupted baseline fails loudly instead of gating wrongly.
Documents without a sidecar (e.g. downloaded CI artifacts) still load.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import BenchFormatError

RESULT_SCHEMA_NAME = "repro-bench-result"
RESULT_SCHEMA_VERSION = 1


def git_sha(cwd: Optional[str] = None) -> Optional[str]:
    """The current git commit SHA, or ``None`` outside a checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=cwd,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout.strip() or None


@dataclass
class BenchCase:
    """One cell of the machine × query-representation matrix."""

    machine: str
    representation: str
    #: Deterministic counters: ``query.<fn>.units``, ``query.<fn>.calls``,
    #: Algorithm 1 rules, scheduling decisions, ...
    work: Dict[str, float] = field(default_factory=dict)
    #: :func:`repro.bench.stats.summarize` of the per-repetition wall times.
    wall: Dict[str, object] = field(default_factory=dict)
    #: Per-span-name summaries: ``{"total": summarize(...),
    #: "self": summarize(...), "count": calls-per-repetition}``.
    phases: Dict[str, Dict[str, object]] = field(default_factory=dict)
    #: ``loops`` / ``loops_at_mii`` / ``ii_total`` / ``mii_total`` /
    #: ``mii_gap``.
    quality: Dict[str, float] = field(default_factory=dict)
    #: Work counters that disagreed between repetitions (excluded from
    #: gating; non-empty values indicate a determinism bug worth chasing).
    nondeterministic: List[str] = field(default_factory=list)

    @property
    def key(self) -> str:
        return "%s/%s" % (self.machine, self.representation)

    def to_dict(self) -> Dict[str, object]:
        return {
            "machine": self.machine,
            "representation": self.representation,
            "work": dict(sorted(self.work.items())),
            "wall": self.wall,
            "phases": {k: self.phases[k] for k in sorted(self.phases)},
            "quality": dict(sorted(self.quality.items())),
            "nondeterministic": sorted(self.nondeterministic),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "BenchCase":
        if not isinstance(data, dict):
            raise BenchFormatError(
                "benchmark case must be an object, got %s"
                % type(data).__name__
            )
        return cls(
            machine=str(data.get("machine", "?")),
            representation=str(data.get("representation", "?")),
            work=dict(data.get("work") or {}),
            wall=dict(data.get("wall") or {}),
            phases=dict(data.get("phases") or {}),
            quality=dict(data.get("quality") or {}),
            nondeterministic=list(data.get("nondeterministic") or []),
        )


@dataclass
class BenchResult:
    """One benchmark run: metadata, configuration, and the case matrix."""

    meta: Dict[str, object] = field(default_factory=dict)
    config: Dict[str, object] = field(default_factory=dict)
    cases: Dict[str, BenchCase] = field(default_factory=dict)

    def add_case(self, case: BenchCase) -> None:
        self.cases[case.key] = case

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": RESULT_SCHEMA_NAME,
            "version": RESULT_SCHEMA_VERSION,
            "meta": dict(self.meta),
            "config": dict(self.config),
            "cases": {
                key: self.cases[key].to_dict()
                for key in sorted(self.cases)
            },
        }

    @classmethod
    def from_dict(
        cls, data: object, path: Optional[str] = None
    ) -> "BenchResult":
        """Parse and schema-validate a stored result document."""
        expected = "%s v%d" % (RESULT_SCHEMA_NAME, RESULT_SCHEMA_VERSION)
        if not isinstance(data, dict):
            raise BenchFormatError(
                "benchmark result%s is not a JSON object"
                % (" %r" % path if path else ""),
                path=path, expected=expected,
                actual=type(data).__name__,
            )
        actual = "%s v%s" % (data.get("schema"), data.get("version"))
        if data.get("schema") != RESULT_SCHEMA_NAME or (
            data.get("version") != RESULT_SCHEMA_VERSION
        ):
            raise BenchFormatError(
                "benchmark result%s has schema %s, expected %s — rerun"
                " `repro bench run` to refresh it"
                % (" %r" % path if path else "", actual, expected),
                path=path, expected=expected, actual=actual,
            )
        cases_data = data.get("cases")
        if not isinstance(cases_data, dict):
            raise BenchFormatError(
                "benchmark result%s has no cases object"
                % (" %r" % path if path else ""),
                path=path, expected=expected, actual=actual,
            )
        result = cls(
            meta=dict(data.get("meta") or {}),
            config=dict(data.get("config") or {}),
        )
        for key in sorted(cases_data):
            case = BenchCase.from_dict(cases_data[key])
            result.cases[key] = case
        return result


def default_meta(label: str = "") -> Dict[str, object]:
    """Environment metadata recorded with every run."""
    import platform

    meta: Dict[str, object] = {
        "git_sha": git_sha(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }
    if label:
        meta["label"] = label
    return meta


def save_result(path: str, result: BenchResult) -> None:
    """Write a result as a checksummed artifact (atomic + sidecar)."""
    from repro.resilience import artifacts

    artifacts.write_json(path, result.to_dict(), kind="bench-result")


def load_result(path: str) -> BenchResult:
    """Load a stored result, verifying its checksum when a sidecar exists.

    An :class:`~repro.errors.ArtifactIntegrityError` means bit rot or a
    half-refreshed baseline; a :class:`~repro.errors.BenchFormatError`
    means a schema mismatch.  Sidecar-less documents (CI downloads,
    hand-built fixtures) load without integrity verification.
    """
    from repro.resilience import artifacts

    if artifacts.has_sidecar(path):
        text, _header = artifacts.read_artifact(
            path, expect_kind="bench-result"
        )
    else:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as exc:
            raise BenchFormatError(
                "cannot read benchmark result %r: %s" % (path, exc),
                path=path,
            ) from exc
    try:
        document = json.loads(text)
    except ValueError as exc:
        raise BenchFormatError(
            "benchmark result %r is not valid JSON: %s" % (path, exc),
            path=path,
        ) from exc
    return BenchResult.from_dict(document, path=os.fspath(path))


__all__ = [
    "RESULT_SCHEMA_NAME",
    "RESULT_SCHEMA_VERSION",
    "BenchCase",
    "BenchResult",
    "default_meta",
    "git_sha",
    "load_result",
    "save_result",
]
