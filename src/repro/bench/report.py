"""Text rendering for benchmark results and comparison verdicts.

JSON output is the documents' own ``to_dict()``; this module owns the
human-facing views printed by ``repro bench run | compare | report``.
"""

from __future__ import annotations

from typing import List, Optional

from repro.bench.compare import Comparison, MetricDelta
from repro.bench.diffprof import diff_profiles, render_diff_text
from repro.bench.result import BenchResult


def _meta_line(result: BenchResult) -> str:
    meta = result.meta
    parts = []
    sha = meta.get("git_sha")
    parts.append("sha=%s" % (str(sha)[:12] if sha else "unknown"))
    for key in ("label", "recorded_at", "python"):
        if meta.get(key):
            parts.append("%s=%s" % (key, meta[key]))
    return "  ".join(parts)


def render_result_text(result: BenchResult) -> str:
    """One run: per-case wall/work/quality table plus top phases."""
    lines: List[str] = []
    lines.append("benchmark run  %s" % _meta_line(result))
    config = result.config
    lines.append(
        "config: loops=%s repetitions=%s reduced=%s%s"
        % (
            config.get("loops"),
            config.get("repetitions"),
            config.get("schedule_reduced"),
            "  (quick)" if config.get("quick") else "",
        )
    )
    lines.append("")
    lines.append(
        "  %-28s %12s %10s %14s %10s %8s"
        % ("case", "wall median", "±MAD", "95% CI", "units", "at MII")
    )
    for key in sorted(result.cases):
        case = result.cases[key]
        wall = case.wall
        units = sum(
            value for name, value in case.work.items()
            if name.startswith("query.") and name.endswith(".units")
        )
        quality = case.quality
        at_mii = "%d/%d" % (
            quality.get("loops_at_mii", 0), quality.get("loops", 0),
        )
        lines.append(
            "  %-28s %10.2fms %8.2fms [%5.1f,%5.1f]ms %10d %8s"
            % (
                key,
                float(wall.get("median", 0.0)) * 1e3,
                float(wall.get("mad", 0.0)) * 1e3,
                float(wall.get("ci_low", 0.0)) * 1e3,
                float(wall.get("ci_high", 0.0)) * 1e3,
                units,
                at_mii,
            )
        )
        if case.nondeterministic:
            lines.append(
                "    WARNING nondeterministic counters: %s"
                % ", ".join(case.nondeterministic)
            )
    lines.append("")
    for key in sorted(result.cases):
        case = result.cases[key]
        if not case.phases:
            continue
        lines.append("  phases — %s" % key)
        lines.append(
            "    %-36s %8s %12s %12s"
            % ("span", "count", "median ms", "self ms")
        )
        by_median = sorted(
            case.phases.items(),
            key=lambda item: -float(
                (item[1].get("total") or {}).get("median", 0.0)
            ),
        )
        for name, entry in by_median:
            total = entry.get("total") or {}
            self_summary = entry.get("self") or {}
            self_ms = (
                "%12.3f" % (float(self_summary["median"]) * 1e3)
                if self_summary.get("median") is not None
                else "%12s" % "-"
            )
            lines.append(
                "    %-36s %8d %12.3f %s"
                % (
                    name,
                    int(entry.get("count", 0)),
                    float(total.get("median", 0.0)) * 1e3,
                    self_ms,
                )
            )
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def _delta_line(delta: MetricDelta) -> str:
    ratio = delta.ratio
    ratio_text = " (x%.3f)" % ratio if ratio is not None else ""
    note = "  — %s" % delta.note if delta.note else ""
    return "  %-12s %-28s %-28s %s -> %s%s%s" % (
        delta.classification.upper(),
        delta.case,
        delta.metric,
        "%g" % delta.base if delta.base is not None else "-",
        "%g" % delta.new if delta.new is not None else "-",
        ratio_text,
        note,
    )


def render_comparison_text(
    comparison: Comparison,
    base: Optional[BenchResult] = None,
    new: Optional[BenchResult] = None,
    top: int = 5,
    verbose: bool = False,
) -> str:
    """The comparison verdict: gate result, then the interesting deltas.

    With both results in hand the differential profile is appended; a
    verbose render also lists every neutral delta.
    """
    lines: List[str] = []
    lines.append(
        "verdict: %s  (%d gated regression(s), %d improvement(s),"
        " %d metric(s) compared)"
        % (
            "OK" if comparison.ok else "REGRESSION",
            len(comparison.regressions),
            len(comparison.improvements),
            len(comparison.deltas),
        )
    )
    policy = comparison.config
    lines.append(
        "policy: work-ratio=%.3f quality-ratio=%.3f wall-gate=%s"
        % (policy.work_ratio, policy.quality_ratio, policy.gate_wall)
    )
    for note in comparison.notes:
        lines.append("note: %s" % note)
    lines.append("")

    regressions = comparison.regressions
    if regressions:
        lines.append("gated regressions")
        for delta in regressions:
            lines.append(_delta_line(delta))
        lines.append("")
    ungated = [
        d for d in comparison.deltas
        if d.classification == "regression" and not d.gated
    ]
    if ungated:
        lines.append("ungated regressions (reported, not failing)")
        for delta in ungated:
            lines.append(_delta_line(delta))
        lines.append("")
    if comparison.improvements:
        lines.append("improvements")
        for delta in comparison.improvements:
            lines.append(_delta_line(delta))
        lines.append("")
    if verbose:
        neutral = [
            d for d in comparison.deltas
            if d.classification not in ("regression", "improvement")
        ]
        if neutral:
            lines.append("neutral / unclassified")
            for delta in neutral:
                lines.append(_delta_line(delta))
            lines.append("")

    if base is not None and new is not None:
        lines.append(render_diff_text(diff_profiles(base, new, top=top)))
    return "\n".join(lines).rstrip() + "\n"


__all__ = ["render_comparison_text", "render_result_text"]
