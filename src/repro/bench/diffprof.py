"""Differential profiling: where did the time (and the work) move?

Given two stored runs, diff each case's span tree and report the top-k
phases by wall-time delta, each annotated with the deterministic work
counters that moved with it — so a report line reads "``sched.ims.schedule``
+12.3ms, with ``reduce.algorithm1.rule3`` +18%" instead of a bare number.

Attribution is by category: a phase ``reduce.generating_set`` is
annotated with the ``reduce.*`` counters, ``sched.ims.schedule`` with the
``sched.*`` and ``query.*`` counters (the query modules are driven by the
scheduler).  Counter attribution is advisory — the hard gating happened
in :mod:`repro.bench.compare`; this module explains the deltas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.bench.result import BenchCase, BenchResult

#: Counter-name prefixes attributed to each span category.
_CATEGORY_COUNTERS: Dict[str, Tuple[str, ...]] = {
    "reduce": ("reduce.",),
    "sched": ("sched.", "query."),
    "profile": ("profile.", "query."),
    "query": ("query.",),
    "automata": ("automata.",),
    "resilience": ("resilience.",),
}

#: Counter deltas smaller than this fraction are not worth a line.
_COUNTER_NOISE_FLOOR = 0.005


@dataclass
class CounterDelta:
    """One deterministic counter that moved between two runs."""

    name: str
    base: float
    new: float

    @property
    def delta(self) -> float:
        return self.new - self.base

    @property
    def percent(self) -> Optional[float]:
        if not self.base:
            return None
        return 100.0 * (self.new - self.base) / self.base

    def describe(self) -> str:
        if self.percent is None:
            return "%s %+g (new)" % (self.name, self.delta)
        return "%s %+.1f%% (%g -> %g)" % (
            self.name, self.percent, self.base, self.new,
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "base": self.base,
            "new": self.new,
            "delta": self.delta,
            "percent": self.percent,
        }


@dataclass
class PhaseDelta:
    """One span's movement between two runs (self time preferred)."""

    case: str
    phase: str
    base_s: float
    new_s: float
    measure: str  # "self" | "total"
    counters: List[CounterDelta] = field(default_factory=list)

    @property
    def delta_s(self) -> float:
        return self.new_s - self.base_s

    @property
    def percent(self) -> Optional[float]:
        if not self.base_s:
            return None
        return 100.0 * self.delta_s / self.base_s

    def to_dict(self) -> Dict[str, object]:
        return {
            "case": self.case,
            "phase": self.phase,
            "measure": self.measure,
            "base_s": self.base_s,
            "new_s": self.new_s,
            "delta_s": self.delta_s,
            "percent": self.percent,
            "counters": [c.to_dict() for c in self.counters],
        }


def _phase_median(
    entry: Dict[str, object]
) -> Optional[Tuple[float, str]]:
    """Median (self preferred, else total) seconds of a stored phase."""
    for measure in ("self", "total"):
        summary = entry.get(measure)
        if isinstance(summary, dict) and summary.get("median") is not None:
            return float(summary["median"]), measure
    return None


def _attributed_counters(
    phase: str,
    base_work: Dict[str, float],
    new_work: Dict[str, float],
    limit: int = 3,
) -> List[CounterDelta]:
    category = phase.split(".", 1)[0]
    prefixes = _CATEGORY_COUNTERS.get(category, (category + ".",))
    moved: List[CounterDelta] = []
    for name in sorted(set(base_work) | set(new_work)):
        if not name.startswith(prefixes):
            continue
        base_value = base_work.get(name, 0.0)
        new_value = new_work.get(name, 0.0)
        if base_value == new_value:
            continue
        if base_value and abs(new_value - base_value) < (
            _COUNTER_NOISE_FLOOR * base_value
        ):
            continue
        moved.append(CounterDelta(name, base_value, new_value))
    moved.sort(key=lambda c: abs(c.delta), reverse=True)
    return moved[:limit]


def diff_case(
    case_key: str,
    base_case: BenchCase,
    new_case: BenchCase,
    top: int = 5,
) -> List[PhaseDelta]:
    """Top-``top`` phase deltas of one case, largest |delta| first."""
    deltas: List[PhaseDelta] = []
    for phase in sorted(set(base_case.phases) & set(new_case.phases)):
        base_median = _phase_median(base_case.phases[phase])
        new_median = _phase_median(new_case.phases[phase])
        if base_median is None or new_median is None:
            continue
        base_s, base_measure = base_median
        new_s, new_measure = new_median
        measure = base_measure if base_measure == new_measure else "total"
        deltas.append(
            PhaseDelta(
                case=case_key,
                phase=phase,
                base_s=base_s,
                new_s=new_s,
                measure=measure,
                counters=_attributed_counters(
                    phase, base_case.work, new_case.work
                ),
            )
        )
    deltas.sort(key=lambda d: abs(d.delta_s), reverse=True)
    return deltas[:top]


def diff_profiles(
    base: BenchResult, new: BenchResult, top: int = 5
) -> Dict[str, List[PhaseDelta]]:
    """Per-case top-``top`` phase deltas for every shared case."""
    report: Dict[str, List[PhaseDelta]] = {}
    for case_key in sorted(set(base.cases) & set(new.cases)):
        deltas = diff_case(
            case_key, base.cases[case_key], new.cases[case_key], top=top
        )
        if deltas:
            report[case_key] = deltas
    return report


def render_diff_text(
    diffs: Dict[str, List[PhaseDelta]]
) -> str:
    """Human-readable differential profile (one block per case)."""
    if not diffs:
        return "differential profile: no shared phases to compare"
    lines: List[str] = ["differential profile (top phases by |delta|)"]
    for case_key, deltas in diffs.items():
        lines.append("  %s" % case_key)
        for delta in deltas:
            pct = (
                " (%+.1f%%)" % delta.percent
                if delta.percent is not None else ""
            )
            lines.append(
                "    %-36s %+9.3fms%s  [%s median]"
                % (delta.phase, delta.delta_s * 1e3, pct, delta.measure)
            )
            for counter in delta.counters:
                lines.append("        %s" % counter.describe())
    return "\n".join(lines)


__all__ = [
    "CounterDelta",
    "PhaseDelta",
    "diff_case",
    "diff_profiles",
    "render_diff_text",
]
