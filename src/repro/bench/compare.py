"""The regression comparator: classify metric pairs, gate deterministically.

Two classes of metric, two gating policies:

* **Deterministic metrics** (work units, query calls, rule firings,
  schedule quality) gate *hard*: any increase beyond the configured
  ratio is a regression, full stop.  They are bit-identical across runs
  on the same commit, so there is no noise to be immune to — a 2% work
  increase is a real 2% work increase.
* **Wall-time metrics** gate *statistically*: a difference only counts
  when the two runs' bootstrap confidence intervals do not overlap, and
  even then wall time only fails the build when gating is explicitly
  enabled (``gate_wall=True``).  CI compares a checked-in baseline from
  different hardware, so its gate is the deterministic one; wall-time
  verdicts are reported for humans.

Directionality: for most metrics smaller is better; ``loops_at_mii`` is
better bigger.  ``mii_total`` is a property of the workload, not the
implementation — a change there means the two runs measured different
things, which marks the case incomparable rather than regressed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.bench.result import BenchResult
from repro.bench.stats import interval_of, intervals_overlap
from repro.errors import BenchFormatError

IMPROVEMENT = "improvement"
REGRESSION = "regression"
NEUTRAL = "neutral"
MISSING_BASE = "missing-base"
MISSING_NEW = "missing-new"

#: Quality counters that are workload properties, not implementation
#: metrics — they must match exactly for a comparison to mean anything.
_WORKLOAD_KEYS = ("loops", "mii_total")

#: Quality metrics where bigger is better.
_BIGGER_IS_BETTER = ("loops_at_mii",)


@dataclass
class CompareConfig:
    """Gating policy knobs (defaults documented in docs/benchmarking.md)."""

    #: Deterministic work counters fail when ``new > base * work_ratio``.
    work_ratio: float = 1.01
    #: Schedule-quality counters use the same hard-gate ratio.
    quality_ratio: float = 1.0
    #: Let wall-time regressions fail the build (off for CI: the
    #: baseline's hardware is not the runner's hardware).
    gate_wall: bool = False
    #: Ignore work counters below this many units — ratio gating on
    #: near-zero counters turns one extra event into a "regression".
    min_units: float = 16.0


@dataclass
class MetricDelta:
    """One compared metric in one case."""

    case: str
    metric: str
    kind: str  # "work" | "quality" | "wall"
    base: Optional[float]
    new: Optional[float]
    classification: str
    gated: bool = False
    note: str = ""

    @property
    def ratio(self) -> Optional[float]:
        if self.base is None or self.new is None or not self.base:
            return None
        return self.new / self.base

    def to_dict(self) -> Dict[str, object]:
        return {
            "case": self.case,
            "metric": self.metric,
            "kind": self.kind,
            "base": self.base,
            "new": self.new,
            "ratio": self.ratio,
            "classification": self.classification,
            "gated": self.gated,
            "note": self.note,
        }


@dataclass
class Comparison:
    """The full verdict of one baseline-vs-candidate comparison."""

    base_meta: Dict[str, object]
    new_meta: Dict[str, object]
    config: CompareConfig
    deltas: List[MetricDelta] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[MetricDelta]:
        """Gated regressions — the ones that fail the build."""
        return [
            d for d in self.deltas
            if d.gated and d.classification == REGRESSION
        ]

    @property
    def improvements(self) -> List[MetricDelta]:
        return [
            d for d in self.deltas if d.classification == IMPROVEMENT
        ]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": "repro-bench-compare",
            "version": 1,
            "ok": self.ok,
            "base_meta": dict(self.base_meta),
            "new_meta": dict(self.new_meta),
            "policy": {
                "work_ratio": self.config.work_ratio,
                "quality_ratio": self.config.quality_ratio,
                "gate_wall": self.config.gate_wall,
                "min_units": self.config.min_units,
            },
            "notes": list(self.notes),
            "regressions": [d.to_dict() for d in self.regressions],
            "deltas": [d.to_dict() for d in self.deltas],
        }


def _classify_ratio(
    base: float, new: float, ratio: float, bigger_is_better: bool = False
) -> str:
    if bigger_is_better:
        base, new = new, base
    if new > base * ratio:
        return REGRESSION
    if base > new * ratio:
        return IMPROVEMENT
    return NEUTRAL


def _compare_work(
    case_key: str,
    base_work: Dict[str, float],
    new_work: Dict[str, float],
    skip: frozenset,
    config: CompareConfig,
    deltas: List[MetricDelta],
) -> None:
    for metric in sorted(set(base_work) | set(new_work)):
        if metric in skip:
            continue
        base_value = base_work.get(metric)
        new_value = new_work.get(metric)
        if base_value is None or new_value is None:
            deltas.append(
                MetricDelta(
                    case_key, metric, "work", base_value, new_value,
                    MISSING_BASE if base_value is None else MISSING_NEW,
                    note="only present on one side; not gated",
                )
            )
            continue
        if max(base_value, new_value) < config.min_units:
            deltas.append(
                MetricDelta(
                    case_key, metric, "work", base_value, new_value,
                    NEUTRAL,
                    note="below min_units=%g; not gated" % config.min_units,
                )
            )
            continue
        classification = _classify_ratio(
            base_value, new_value, config.work_ratio
        )
        deltas.append(
            MetricDelta(
                case_key, metric, "work", base_value, new_value,
                classification, gated=True,
            )
        )


def _compare_quality(
    case_key: str,
    base_quality: Dict[str, float],
    new_quality: Dict[str, float],
    config: CompareConfig,
    deltas: List[MetricDelta],
    notes: List[str],
) -> bool:
    """Compare quality metrics; returns False when the case is
    incomparable (workload mismatch)."""
    for key in _WORKLOAD_KEYS:
        if base_quality.get(key) != new_quality.get(key):
            notes.append(
                "%s: workload mismatch (%s: base=%s new=%s) — case not"
                " compared" % (
                    case_key, key,
                    base_quality.get(key), new_quality.get(key),
                )
            )
            return False
    for metric in ("ii_total", "loops_at_mii"):
        base_value = base_quality.get(metric)
        new_value = new_quality.get(metric)
        if base_value is None or new_value is None:
            deltas.append(
                MetricDelta(
                    case_key, "quality." + metric, "quality",
                    base_value, new_value,
                    MISSING_BASE if base_value is None else MISSING_NEW,
                    note="only present on one side; not gated",
                )
            )
            continue
        classification = _classify_ratio(
            base_value,
            new_value,
            config.quality_ratio,
            bigger_is_better=metric in _BIGGER_IS_BETTER,
        )
        deltas.append(
            MetricDelta(
                case_key, "quality." + metric, "quality",
                base_value, new_value, classification, gated=True,
            )
        )
    return True


def _compare_wall(
    case_key: str,
    metric: str,
    base_wall: Dict[str, object],
    new_wall: Dict[str, object],
    config: CompareConfig,
    deltas: List[MetricDelta],
) -> None:
    base_median = base_wall.get("median")
    new_median = new_wall.get("median")
    if base_median is None or new_median is None:
        deltas.append(
            MetricDelta(
                case_key, metric, "wall", base_median, new_median,
                MISSING_BASE if base_median is None else MISSING_NEW,
                note="only present on one side; not gated",
            )
        )
        return
    base_n = int(base_wall.get("n") or 0)
    new_n = int(new_wall.get("n") or 0)
    if base_n < 2 or new_n < 2:
        deltas.append(
            MetricDelta(
                case_key, metric, "wall", base_median, new_median,
                NEUTRAL,
                note="single-repetition run: no interval, not classified",
            )
        )
        return
    base_interval = interval_of(base_wall)
    new_interval = interval_of(new_wall)
    if base_interval is None or new_interval is None:
        deltas.append(
            MetricDelta(
                case_key, metric, "wall", base_median, new_median,
                NEUTRAL, note="no confidence interval recorded",
            )
        )
        return
    if intervals_overlap(base_interval, new_interval):
        classification = NEUTRAL
        note = "bootstrap intervals overlap"
    elif new_median > base_median:
        classification = REGRESSION
        note = "bootstrap intervals disjoint"
    else:
        classification = IMPROVEMENT
        note = "bootstrap intervals disjoint"
    deltas.append(
        MetricDelta(
            case_key, metric, "wall", base_median, new_median,
            classification, gated=config.gate_wall, note=note,
        )
    )


def compare_results(
    base: BenchResult,
    new: BenchResult,
    config: Optional[CompareConfig] = None,
) -> Comparison:
    """Compare a candidate run against a baseline run.

    Both results must carry the current schema (loading already enforced
    that); differing *configurations* degrade gracefully — cases present
    on only one side are noted, never gated.
    """
    if config is None:
        config = CompareConfig()
    comparison = Comparison(
        base_meta=dict(base.meta),
        new_meta=dict(new.meta),
        config=config,
    )
    if base.config != new.config:
        comparison.notes.append(
            "run configurations differ (base=%r new=%r): only matching"
            " cases are compared" % (base.config, new.config)
        )

    for case_key in sorted(set(base.cases) | set(new.cases)):
        base_case = base.cases.get(case_key)
        new_case = new.cases.get(case_key)
        if base_case is None or new_case is None:
            comparison.notes.append(
                "case %s present only in the %s run; skipped"
                % (case_key, "candidate" if base_case is None else "base")
            )
            continue
        if not _compare_quality(
            case_key, base_case.quality, new_case.quality,
            config, comparison.deltas, comparison.notes,
        ):
            continue
        # Counters that drifted between repetitions on either side are
        # unreliable on both; quality counters are compared separately.
        skip = frozenset(
            base_case.nondeterministic
        ) | frozenset(new_case.nondeterministic) | frozenset(
            "profile." + key for key in (
                "loops", "loops_at_mii", "ii_total", "mii_total",
            )
        )
        _compare_work(
            case_key, base_case.work, new_case.work, skip,
            config, comparison.deltas,
        )
        _compare_wall(
            case_key, "wall", base_case.wall, new_case.wall,
            config, comparison.deltas,
        )
        for phase in sorted(
            set(base_case.phases) & set(new_case.phases)
        ):
            _compare_wall(
                case_key,
                "phase." + phase,
                base_case.phases[phase].get("total") or {},
                new_case.phases[phase].get("total") or {},
                # Phase times inform the differential profile; they
                # never gate on their own (the whole-run wall does).
                CompareConfig(
                    work_ratio=config.work_ratio,
                    quality_ratio=config.quality_ratio,
                    gate_wall=False,
                    min_units=config.min_units,
                ),
                comparison.deltas,
            )
    return comparison


def compare_metric_maps(
    case_key: str,
    base_work: Dict[str, float],
    new_work: Dict[str, float],
    base_quality: Optional[Dict[str, float]] = None,
    new_quality: Optional[Dict[str, float]] = None,
    config: Optional[CompareConfig] = None,
    skip: frozenset = frozenset(),
) -> Comparison:
    """Compare bare work/quality metric maps under the bench policy.

    The reuse surface for callers that have metric dictionaries but no
    :class:`~repro.bench.result.BenchResult` envelope — ``repro runs
    diff`` feeds two runlog records through this so a registry diff and
    a bench comparison always agree on what gates.  Semantics are
    identical to :func:`compare_results`: deterministic work counters
    hard-gate at ``work_ratio`` above the ``min_units`` floor, quality
    gates at ``quality_ratio`` with ``loops_at_mii`` bigger-is-better, a
    workload-property mismatch marks the case incomparable, and metrics
    present on only one side are noted but never gated.
    """
    if config is None:
        config = CompareConfig()
    comparison = Comparison(base_meta={}, new_meta={}, config=config)
    base_quality = base_quality or {}
    new_quality = new_quality or {}
    comparable = True
    if base_quality or new_quality:
        comparable = _compare_quality(
            case_key, base_quality, new_quality,
            config, comparison.deltas, comparison.notes,
        )
    if comparable:
        _compare_work(
            case_key, base_work, new_work, skip, config, comparison.deltas
        )
    return comparison


def ensure_comparable(base: BenchResult, new: BenchResult) -> None:
    """Raise :class:`BenchFormatError` when two results cannot be compared.

    Loading already rejects wrong schema versions; this exists for
    callers constructing results in memory.
    """
    for which, result in (("base", base), ("candidate", new)):
        if not result.cases:
            raise BenchFormatError(
                "%s benchmark result has no cases" % which
            )


__all__ = [
    "IMPROVEMENT",
    "MISSING_BASE",
    "MISSING_NEW",
    "NEUTRAL",
    "REGRESSION",
    "CompareConfig",
    "Comparison",
    "MetricDelta",
    "compare_metric_maps",
    "compare_results",
    "ensure_comparable",
]
