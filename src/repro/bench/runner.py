"""The benchmark runner: the machine × query-representation matrix.

Each case runs the paper's full pipeline (reduce, then modulo-schedule a
loop workload) ``repetitions`` times under a fresh tracer, via
:func:`repro.obs.profile.profile_machine` — the same code path as
``repro profile``, so the observatory measures exactly what the profiler
shows.  Per repetition it collects:

* the wall time of the whole pipeline plus per-phase inclusive and
  exclusive (self) span times;
* every deterministic counter (work units, query calls, Algorithm 1 rule
  firings, scheduling decisions, IMS events) — these must be
  bit-identical across repetitions, and any counter that is not is
  recorded under the case's ``nondeterministic`` list and excluded from
  gating;
* schedule quality (loops at MII, total achieved II vs total MII).

A :class:`~repro.resilience.Budget` can bound the whole run: the runner
checkpoints after every repetition, charging the repetition's query work
units in the shared WorkCounters currency, so ``--deadline`` /
``--max-units`` behave exactly as they do for ``repro reduce``.

This module pulls in the scheduler stack, so (like ``repro.obs.profile``)
it is intentionally not imported from ``repro.bench.__init__``.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.result import BenchCase, BenchResult, default_meta
from repro.bench.stats import summarize
from repro.obs.export import exclusive_times
from repro.obs.profile import profile_machine, workload_for
from repro.obs.trace import Tracer
from repro.scheduler.corpus import CorpusScheduler

#: The default matrix: both study-scale machines, all representations.
DEFAULT_MACHINES = ("example", "cydra5-subset")
DEFAULT_REPRESENTATIONS = ("discrete", "bitvector", "compiled")
DEFAULT_LOOPS = 8
DEFAULT_REPETITIONS = 5

#: The CI configuration (``repro bench run --quick``): single machine,
#: all representations, enough repetitions for a bootstrap interval.
QUICK_MACHINES = ("example",)
QUICK_LOOPS = 4
QUICK_REPETITIONS = 3

#: Corpus cells: the whole loop suite scheduled in one pass — the
#: columnar batch plane vs the same driver forced down the per-loop
#: compiled path.  A compare of the two cells shows the batch plane's
#: work reduction directly.
CORPUS_MODES = ("corpus-batch", "corpus-perloop")
DEFAULT_CORPUS_LOOPS = 24
QUICK_CORPUS_LOOPS = 8


def deterministic_work(tracer: Tracer) -> Dict[str, float]:
    """The deterministic counters of one traced repetition.

    Counters count algorithmic events (usages touched, rules fired,
    decisions made), never time, so every one of them must reproduce
    exactly on the same commit and configuration.  Query call counts are
    lifted out of the timers (``query.<fn>.calls``) because call counts
    are deterministic even though the attached durations are not.
    """
    work: Dict[str, float] = dict(tracer.metrics.counters)
    for name, timer in tracer.metrics.timers.items():
        if name.startswith("query."):
            work[name + ".calls"] = timer.count
    return work


def _run_repetition(
    machine,
    representation: str,
    loops: int,
    schedule_reduced: bool,
) -> Tuple[float, Tracer]:
    tracer = Tracer()
    start = perf_counter()
    profile_machine(
        machine,
        loops=loops,
        representation=representation,
        schedule_reduced=schedule_reduced,
        tracer=tracer,
    )
    return perf_counter() - start, tracer


def run_case(
    machine,
    representation: str,
    loops: int,
    repetitions: int,
    schedule_reduced: bool = False,
    budget=None,
) -> BenchCase:
    """Run one ``machine/representation`` cell of the matrix."""
    wall_samples: List[float] = []
    phase_total_samples: Dict[str, List[float]] = {}
    phase_self_samples: Dict[str, List[float]] = {}
    phase_counts: Dict[str, int] = {}
    work: Optional[Dict[str, float]] = None
    nondeterministic: List[str] = []
    quality: Dict[str, float] = {}

    for _rep in range(repetitions):
        wall_s, tracer = _run_repetition(
            machine, representation, loops, schedule_reduced
        )
        wall_samples.append(wall_s)

        for name, timer in tracer.metrics.timers.items():
            if name.startswith("query."):
                continue
            phase_total_samples.setdefault(name, []).append(timer.total)
            phase_counts[name] = timer.count
        for name, self_s in exclusive_times(tracer).items():
            if name.startswith("query."):
                continue
            phase_self_samples.setdefault(name, []).append(self_s)

        rep_work = deterministic_work(tracer)
        if work is None:
            work = rep_work
        elif rep_work != work:
            drifted = sorted(
                name
                for name in set(work) | set(rep_work)
                if work.get(name) != rep_work.get(name)
            )
            for name in drifted:
                if name not in nondeterministic:
                    nondeterministic.append(name)

        if budget is not None:
            budget.checkpoint(
                "bench:%s/%s" % (machine.name, representation),
                units=int(
                    sum(
                        value
                        for name, value in rep_work.items()
                        if name.startswith("query.")
                        and name.endswith(".units")
                    )
                ),
                progress={"repetitions": len(wall_samples)},
            )

    assert work is not None
    for name in nondeterministic:
        work.pop(name, None)

    quality["loops"] = work.get("profile.loops", 0)
    quality["loops_at_mii"] = work.get("profile.loops_at_mii", 0)
    quality["ii_total"] = work.get("profile.ii_total", 0)
    quality["mii_total"] = work.get("profile.mii_total", 0)
    quality["mii_gap"] = quality["ii_total"] - quality["mii_total"]

    phases: Dict[str, Dict[str, object]] = {}
    for name, samples in phase_total_samples.items():
        phases[name] = {
            "count": phase_counts.get(name, 0),
            "total": summarize(samples),
        }
        self_samples = phase_self_samples.get(name)
        if self_samples and len(self_samples) == len(samples):
            phases[name]["self"] = summarize(self_samples)

    return BenchCase(
        machine=machine.name,
        representation=representation,
        work=work,
        wall=summarize(wall_samples),
        phases=phases,
        quality=quality,
        nondeterministic=nondeterministic,
    )


def run_corpus_case(
    machine,
    mode: str,
    loops: int,
    repetitions: int,
    budget=None,
) -> BenchCase:
    """Run one corpus cell: the whole loop suite scheduled in one pass.

    ``mode`` is one of :data:`CORPUS_MODES`.  The work counters come
    straight from the corpus driver's merged
    :class:`~repro.query.work.WorkCounters` (``query.<fn>.units`` /
    ``query.<fn>.calls`` keys, the same shape the per-loop cells use),
    so a bench compare gates the batch plane's query-path work exactly
    like any other representation.
    """
    if mode not in CORPUS_MODES:
        raise ValueError(
            "unknown corpus mode %r (choose from %s)"
            % (mode, ", ".join(CORPUS_MODES))
        )
    representation = "batch" if mode == "corpus-batch" else "compiled"
    # Same workload resolution as the per-loop cells: the generated
    # suite where the vocabulary fits, machine-native chains otherwise.
    graphs = workload_for(machine, None, loops)
    wall_samples: List[float] = []
    work: Optional[Dict[str, float]] = None
    nondeterministic: List[str] = []

    for _rep in range(repetitions):
        scheduler = CorpusScheduler(machine, representation=representation)
        start = perf_counter()
        result = scheduler.schedule_suite(graphs)
        wall_samples.append(perf_counter() - start)

        rep_work: Dict[str, float] = {}
        for function, units in result.work.units.items():
            rep_work["query.%s.units" % function] = float(units)
        for function, calls in result.work.calls.items():
            rep_work["query.%s.calls" % function] = float(calls)
        rep_work["corpus.scheduled"] = float(result.scheduled)
        rep_work["corpus.failed"] = float(result.failed)
        if work is None:
            work = rep_work
        elif rep_work != work:
            for name in sorted(set(work) | set(rep_work)):
                if work.get(name) != rep_work.get(name):
                    if name not in nondeterministic:
                        nondeterministic.append(name)

        if budget is not None:
            budget.checkpoint(
                "bench:%s/%s" % (machine.name, mode),
                units=int(
                    sum(
                        value
                        for name, value in rep_work.items()
                        if name.startswith("query.")
                        and name.endswith(".units")
                    )
                ),
                progress={"repetitions": len(wall_samples)},
            )

    assert work is not None
    for name in nondeterministic:
        work.pop(name, None)

    done = [o for o in result.outcomes if not o.failed]
    quality = {
        "loops": float(len(result.outcomes)),
        "loops_at_mii": float(sum(1 for o in done if o.ii == o.mii)),
        "ii_total": float(sum(o.ii for o in done)),
        "mii_total": float(sum(o.mii for o in done)),
    }
    quality["mii_gap"] = quality["ii_total"] - quality["mii_total"]

    return BenchCase(
        machine=machine.name,
        representation=mode,
        work=work,
        wall=summarize(wall_samples),
        phases={},
        quality=quality,
        nondeterministic=nondeterministic,
    )


def run_benchmark(
    machines: Sequence[Tuple[str, object]],
    representations: Sequence[str] = DEFAULT_REPRESENTATIONS,
    loops: int = DEFAULT_LOOPS,
    repetitions: int = DEFAULT_REPETITIONS,
    schedule_reduced: bool = False,
    budget=None,
    label: str = "",
    quick: bool = False,
    case_filter: Optional[str] = None,
    corpus_loops: Optional[int] = None,
) -> BenchResult:
    """Run the full matrix and return the result document.

    ``machines`` is a sequence of ``(name, MachineDescription)`` pairs —
    the caller resolves built-in names or MDL files (the CLI reuses its
    machine loader; tests pass toy machines directly).  ``case_filter``
    keeps only cells whose ``machine/representation`` key contains the
    substring (``repro bench run --filter``); the recorded config notes
    the filter so a compare against an unfiltered baseline reports the
    config mismatch.  ``corpus_loops`` adds the :data:`CORPUS_MODES`
    cells per machine, scheduling a suite of that many loops in one
    pass (``None``/``0`` skips them).
    """
    result = BenchResult(
        meta=default_meta(label=label),
        config={
            "machines": [name for name, _machine in machines],
            "representations": list(representations),
            "loops": loops,
            "repetitions": repetitions,
            "schedule_reduced": schedule_reduced,
            "quick": quick,
        },
    )
    if case_filter:
        result.config["filter"] = case_filter
    if corpus_loops:
        result.config["corpus_loops"] = corpus_loops
    for name, machine in machines:
        for representation in representations:
            if case_filter and case_filter not in (
                "%s/%s" % (name, representation)
            ):
                continue
            result.add_case(
                run_case(
                    machine,
                    representation,
                    loops=loops,
                    repetitions=repetitions,
                    schedule_reduced=schedule_reduced,
                    budget=budget,
                )
            )
        for mode in CORPUS_MODES if corpus_loops else ():
            if case_filter and case_filter not in ("%s/%s" % (name, mode)):
                continue
            result.add_case(
                run_corpus_case(
                    machine,
                    mode,
                    loops=corpus_loops,
                    repetitions=repetitions,
                    budget=budget,
                )
            )
    return result


__all__ = [
    "CORPUS_MODES",
    "DEFAULT_CORPUS_LOOPS",
    "DEFAULT_LOOPS",
    "DEFAULT_MACHINES",
    "DEFAULT_REPETITIONS",
    "DEFAULT_REPRESENTATIONS",
    "QUICK_CORPUS_LOOPS",
    "QUICK_LOOPS",
    "QUICK_MACHINES",
    "QUICK_REPETITIONS",
    "deterministic_work",
    "run_benchmark",
    "run_case",
    "run_corpus_case",
]
