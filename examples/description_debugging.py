#!/usr/bin/env python
"""Debugging a broken machine description, end to end.

The workflow the paper wants to eliminate: someone hand-reduces a
description, gets it subtly wrong, and schedules miscompile.  This
example plays the victim and then every diagnostic tool in the library:

1. a hand-"optimized" MIPS description drops the divide unit's rows;
2. `diff_constraints` reports the lost scheduling constraints;
3. `find_witness` produces a concrete two-instruction schedule that is
   legal on the broken description but collides on the real machine;
4. the occupancy chart shows the collision;
5. the cycle-accurate simulator quantifies the damage: stalls with
   hardware interlocks, corruption events without.
"""

from repro.analysis import (
    diff_constraints,
    drop_resources,
    occupancy_chart,
)
from repro.core import find_witness
from repro.machines import mips_r3000
from repro.scheduler import OperationDrivenScheduler, chain
from repro.simulate import simulate


def main():
    truth = mips_r3000()
    broken = drop_resources(truth, ["iu.multdiv", "iu.mdbusy"])
    print("hand-'optimized' description dropped:",
          "iu.multdiv, iu.mdbusy\n")

    # 2. what constraints were lost?
    print(diff_constraints(truth, broken, limit=3))

    # 3. a concrete distinguishing schedule.
    witness = find_witness(truth, broken)
    print("\nwitness:", witness.describe())

    # 4. see it.
    print("\noccupancy of the witness on the REAL machine "
          "(* = double-booked):")
    print(occupancy_chart(
        truth, witness.placements,
        resources=["iu.multdiv", "iu.mdbusy", "iu.ex"],
    ))

    # 5. what happens to real code scheduled with the broken tables?
    scheduler = OperationDrivenScheduler(broken)
    result = scheduler.schedule(
        chain("hot-block", ["div", "mfhilo", "div", "mfhilo"], latency=2)
    )
    placements = [
        (result.chosen_opcodes[n], t) for n, t in result.times.items()
    ]
    interlocked = simulate(truth, placements)
    corrupted = simulate(truth, placements, interlock=False)
    print("\nscheduling a div-heavy block with the broken description:")
    print("  planned length:      %d cycles" % result.length)
    print("  with interlocks:     %s" % interlocked.summary())
    print("  without interlocks:  %s" % corrupted.summary())
    for event in corrupted.conflicts[:3]:
        print("    ", event.describe())

    # And the same block with the CORRECT description is clean.
    good = OperationDrivenScheduler(truth).schedule(
        chain("hot-block", ["div", "mfhilo", "div", "mfhilo"], latency=2)
    )
    clean = simulate(
        truth,
        [(good.chosen_opcodes[n], t) for n, t in good.times.items()],
    )
    print("\nsame block, correct description: %s" % clean.summary())


if __name__ == "__main__":
    main()
