#!/usr/bin/env python
"""Predicated execution: if-converted branches sharing resource slots.

The Cydra 5 executes every operation under a predicate; IF-conversion
turns branches into predicate definitions so both arms of a conditional
live in one block.  The Enhanced Modulo Scheduling insight (which the
paper's discrete representation supports via a predicate field in each
reserved-table entry): operations guarded by *complementary* predicates
can never execute together, so they may share reservation slots — halving
the resource pressure of balanced conditionals.

This example schedules the two arms of ``if (x > 0) y = a*b; else
y = c+d;`` into the same cycles of a modulo reservation table.
"""

from repro.machines import cydra5_subset
from repro.query.predicated import (
    TRUE,
    PredicatedDiscreteQueryModule,
    PredicateSpace,
)


def main():
    machine = cydra5_subset()
    predicates = PredicateSpace()
    p = "x_positive"
    not_p = predicates.complement(p)
    module = PredicatedDiscreteQueryModule(
        machine, predicates=predicates, modulo=4
    )

    # Loop-invariant setup under the true predicate.
    module.assign("addr_gen.0", 0, predicate=TRUE)

    # THEN arm: multiply on the FP multiplier, guarded by p.
    then_op = module.assign("fmul_s", 1, predicate=p)
    print("then-arm fmul_s placed at cycle 1 under %r" % p)

    # ELSE arm: the add unit is free anyway, but the interesting case is
    # the *same* unit: a second fmul_s in the same MRT slot is legal
    # under the complementary predicate...
    print(
        "same-slot fmul_s under %r allowed? %s"
        % (not_p, module.check("fmul_s", 1, predicate=not_p))
    )
    module.assign("fmul_s", 1, predicate=not_p)

    # ...but a third, unconditional one is not.
    print(
        "same-slot fmul_s under TRUE allowed?  %s"
        % module.check("fmul_s", 1, predicate=TRUE)
    )
    # And an unrelated predicate conservatively conflicts too.
    print(
        "same-slot fmul_s under %r allowed?  %s"
        % ("q", module.check("fmul_s", 1, predicate="q"))
    )

    print("\nfm.issue slot-1 holders:", module.holders_at("fm.issue", 1))

    # Backtracking interacts with predicates: an unconditional intruder
    # evicts both arms (it overlaps each), nothing less.
    _token, evicted = module.assign_free("fmul_s", 1, predicate=TRUE)
    print(
        "assign&free under TRUE evicted %d predicated holders"
        % len(evicted)
    )
    assert then_op in evicted

    print("\nwork accounting:")
    print(module.work.report())


if __name__ == "__main__":
    main()
