#!/usr/bin/env python
"""Quickstart: reduce a machine description and query it.

Reproduces the paper's introductory example (Figure 1): a hypothetical
machine with a fully pipelined unit (operation A) and a partially
pipelined unit (operation B) is reduced from 5 resources / 11 usages to
2 synthesized resources / 5 usages — while answering every contention
query identically.
"""

from repro import example_machine, reduce_machine
from repro.query import BitvectorQueryModule, DiscreteQueryModule


def main():
    machine = example_machine()
    print("original machine:", machine)
    for op in machine.operation_names:
        print("\noperation", op)
        print(machine.table(op).render(resources=machine.resources))

    # Step 1-3 of the paper, with the result verified to be exact.
    reduction = reduce_machine(machine)
    print("\n" + reduction.summary())
    reduced = reduction.reduced
    for op in reduced.operation_names:
        print("\nreduced operation", op)
        print(reduced.table(op).render(resources=reduced.resources))

    # Both descriptions drive the same queries; the reduced one is
    # cheaper because it touches fewer usages (or words) per call.
    print("\nforbidden latency matrix (identical for both):")
    for op_x, op_y, latencies in reduction.matrix.pairs():
        print("  F[%s][%s] = %s" % (op_x, op_y, sorted(latencies)))

    original_module = DiscreteQueryModule(machine)
    reduced_module = BitvectorQueryModule(reduced, word_cycles=4)
    for module in (original_module, reduced_module):
        module.assign("B", 0)

    print("\nqueries (original vs reduced answers):")
    for op, cycle in [("B", 1), ("B", 3), ("B", 4), ("A", -1), ("A", 1)]:
        a = original_module.check(op, cycle)
        b = reduced_module.check(op, cycle)
        assert a == b
        print(
            "  can %s issue at cycle %2d with B@0 scheduled?  %s"
            % (op, cycle, "yes" if a else "no")
        )

    print("\nwork per query (units handled):")
    print("  original:", original_module.work.per_call("check"))
    print("  reduced: ", reduced_module.work.per_call("check"))


if __name__ == "__main__":
    main()
