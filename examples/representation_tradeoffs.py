#!/usr/bin/env python
"""Sweep internal representations of the Cydra 5 and measure query work.

Reproduces the trade-off behind Tables 1 and 6: packing more
cycle-bitvectors per word makes each reservation table *bigger in usages*
but *smaller in words*, and it is words that a check touches.
"""

from repro.core import reduce_machine
from repro.machines import cydra5
from repro.scheduler import IterativeModuloScheduler
from repro.stats import average_usages_per_op, average_word_usages
from repro.workloads import loop_suite

LOOPS = 150


def main():
    machine = cydra5()
    loops = loop_suite(LOOPS)
    print(
        "%-14s %10s %10s %12s %12s"
        % ("description", "usages/op", "words/op", "work/call", "speedup")
    )

    baseline = None
    configs = [("original", None, "discrete", 1)]
    configs.append(("res-uses", "res-uses", "discrete", 1))
    for k in (1, 2, 4):
        configs.append(
            ("%d-cyc-word" % k, ("word-uses", k), "bitvector", k)
        )

    for name, objective, representation, k in configs:
        if objective is None:
            description = machine
        elif objective == "res-uses":
            description = reduce_machine(machine).reduced
        else:
            description = reduce_machine(
                machine, objective="word-uses", word_cycles=k
            ).reduced
        scheduler = IterativeModuloScheduler(
            description, representation=representation, word_cycles=k
        )
        from repro.query import WorkCounters

        work = WorkCounters()
        for graph in loops:
            work.merge(scheduler.schedule(graph).work)
        average = work.weighted_average()
        if baseline is None:
            baseline = average
        print(
            "%-14s %10.1f %10.1f %12.2f %11.2fx"
            % (
                name,
                average_usages_per_op(description),
                average_word_usages(description, k),
                average,
                baseline / average,
            )
        )


if __name__ == "__main__":
    main()
