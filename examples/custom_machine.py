#!/usr/bin/env python
"""Author a machine description in MDL text, reduce it, and compare the
reservation-table query module against a finite-state automaton.

Demonstrates the paper's intended workflow: the machine is written
"in terms close to the actual hardware structure" (every stage, every
bus), and the compiler-facing reduced description is generated
automatically and provably exactly.
"""

from repro import mdl
from repro.automata import AutomatonQueryModule, PipelineAutomaton
from repro.core import assert_equivalent, reduce_machine
from repro.query import DiscreteQueryModule

MDL_TEXT = """
# A dual-issue DSP: one MAC pipe, one ALU pipe, a shared writeback bus,
# and a non-pipelined 6-cycle divider hanging off the ALU pipe.
machine dsp

resources islot.alu islot.mac alu.ex alu.div mac.m1 mac.m2 mac.acc wb.bus

operation alu
    islot.alu: 0
    alu.ex: 1
    wb.bus: 2

operation div
    islot.alu: 0
    alu.ex: 1
    alu.div: 1-6
    wb.bus: 7

operation mac
    islot.mac: 0
    mac.m1: 1
    mac.m2: 2
    mac.acc: 3
    wb.bus: 4

operation mul
    islot.mac: 0
    mac.m1: 1
    mac.m2: 2
    wb.bus: 3

alternatives nop_move = alu mul
"""


def main():
    machine = mdl.loads(MDL_TEXT)
    print("parsed:", machine)

    reduction = reduce_machine(machine)
    print(reduction.summary())
    assert_equivalent(machine, reduction.reduced)
    print("\nreduced description as MDL:\n")
    print(mdl.dumps(reduction.reduced))

    # The structural hazards this machine hides: a mac issued 2 cycles
    # after an alu collides on the writeback bus (2+... -> wb at 4 vs 4).
    module = DiscreteQueryModule(reduction.reduced)
    module.assign("alu", 2)  # wb.bus at cycle 4
    print("mac at 0 (wb.bus also at 4)?", module.check("mac", 0))
    print("mac at 1 (wb.bus at 5)?    ", module.check("mac", 1))
    print(
        "alternative for nop_move at 2:",
        module.check_with_alternatives("nop_move", 2),
    )

    # The same machine as a contention-recognizing automaton.
    automaton = PipelineAutomaton.build(machine)
    print(
        "\nmonolithic automaton: %d states, %d transitions"
        % (automaton.num_states, automaton.num_transitions)
    )
    aqm = AutomatonQueryModule(machine, automaton=automaton)
    aqm.assign("alu", 2)
    assert aqm.check("mac", 0) == module.check("mac", 0)
    assert aqm.check("mac", 1) == module.check("mac", 1)
    print("automaton agrees with the reduced reservation tables")


if __name__ == "__main__":
    main()
