#!/usr/bin/env python
"""Software-pipeline classic numeric kernels for the Cydra 5.

Runs Rau's Iterative Modulo Scheduler over the named Livermore-style
kernels using a reduced Cydra 5 description and a modulo reservation
table, then prints each kernel's schedule and its MRT occupancy.
"""

from repro.core import reduce_machine
from repro.machines import cydra5_subset
from repro.scheduler import IterativeModuloScheduler
from repro.workloads import KERNELS


def render_mrt(result):
    """ASCII modulo reservation table: rows = resources, cols = slots."""
    machine = result.machine
    ii = result.ii
    grid = {}
    for name, time in result.times.items():
        opcode = result.chosen_opcodes[name]
        for resource, cycle in machine.table(opcode).iter_usages():
            grid[(resource, (time + cycle) % ii)] = name
    used_resources = sorted({r for r, _ in grid})
    width = max((len(r) for r in used_resources), default=0)
    lines = [" " * width + " |" + "".join(str(s % 10) for s in range(ii))]
    for resource in used_resources:
        cells = "".join(
            "X" if (resource, s) in grid else "." for s in range(ii)
        )
        lines.append(resource.ljust(width) + " |" + cells)
    return "\n".join(lines)


def main():
    machine = reduce_machine(
        cydra5_subset(), objective="word-uses", word_cycles=7
    ).reduced
    scheduler = IterativeModuloScheduler(
        machine, representation="bitvector", word_cycles=7
    )

    for name, build in KERNELS.items():
        graph = build()
        result = scheduler.schedule(graph)
        print("=" * 60)
        print(
            "%s: %d ops, MII=%d, II=%d (%s), %.2f decisions/op"
            % (
                name,
                graph.num_operations,
                result.mii,
                result.ii,
                "optimal" if result.optimal else "suboptimal",
                result.decisions_per_op,
            )
        )
        for op_name in sorted(result.times, key=result.times.get):
            print(
                "  t=%3d (slot %2d)  %-12s as %s"
                % (
                    result.times[op_name],
                    result.times[op_name] % result.ii,
                    op_name,
                    result.chosen_opcodes[op_name],
                )
            )
        print("\nmodulo reservation table (reduced resources):")
        print(render_mrt(result))
        print()


if __name__ == "__main__":
    main()
