#!/usr/bin/env python
"""Trace scheduling across block boundaries, then VLIW bundling.

Schedules a three-block trace on the Cydra 5 subset: a block issuing a
long-latency load late, a tiny middle block the load's return path
reaches *through*, and a block that must schedule around the dangling
reservations.  The final kernel is formatted as VLIW instruction words
(MultiOp bundles) and serialized to JSON.
"""

from repro.core import schedule_is_contention_free
from repro.machines import cydra5_subset
from repro.scheduler import (
    DependenceGraph,
    IterativeModuloScheduler,
    TraceScheduler,
    bundle,
    serialize,
)
from repro.workloads import KERNELS


def make_blocks():
    head = DependenceGraph("head")
    head.add_operation("addr", "addr_gen")
    head.add_operation("late_load", "load_s")
    head.add_dependence("addr", "late_load", 2)

    middle = DependenceGraph("middle")
    middle.add_operation("cmp", "icmp")

    tail = DependenceGraph("tail")
    tail.add_operation("another_load", "load_s")
    tail.add_operation("use", "fadd_s")
    tail.add_dependence("another_load", "use", 18)
    return [head, middle, tail]


def main():
    machine = cydra5_subset()

    print("=" * 64)
    print("trace scheduling with dangling requirements")
    trace = TraceScheduler(machine).schedule(make_blocks())
    for index, block in enumerate(trace.blocks):
        print(
            "block %d (%s): length %d, boundary in: %s"
            % (
                index,
                block.graph.name,
                block.length,
                trace.boundaries[index - 1] if index else [],
            )
        )
        for name, time in sorted(block.times.items(), key=lambda kv: kv[1]):
            print("   t=%3d  %s" % (time, name))
    assert schedule_is_contention_free(machine, trace.flat_placements())
    print("flat trace verified contention-free "
          "(%d cycles total)" % trace.total_length)

    print()
    print("=" * 64)
    print("VLIW bundling of a software-pipelined kernel")
    result = IterativeModuloScheduler(machine).schedule(KERNELS["hydro"]())
    bundling = bundle(
        machine, result.times, result.chosen_opcodes, modulo=result.ii
    )
    print(
        "%s: II=%d, %d unit fields, density %.0f%%"
        % (
            result.graph.name,
            result.ii,
            len(bundling.units),
            100 * bundling.density,
        )
    )
    print(bundling.render())

    print()
    print("=" * 64)
    print("schedule as JSON (first 400 chars):")
    text = serialize.dumps(serialize.modulo_result_to_json(result))
    print(text[:400] + " ...")


if __name__ == "__main__":
    main()
