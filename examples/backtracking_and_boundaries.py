#!/usr/bin/env python
"""Unrestricted scheduling features: backtracking and block boundaries.

Shows the two capabilities the paper calls out as hard for automata:

1. ``assign&free`` — a backtracking scheduler deliberately schedules into
   a conflict and evicts the previous owners (Rau's Iterative Modulo
   Scheduler does this whenever no slot in an II-wide window is free);
2. dangling resource requirements — operations issued at *negative*
   cycles by predecessor basic blocks still constrain this block's
   schedule, which the operation-driven scheduler honours.
"""

from repro.machines import example_machine, mips_r3000
from repro.query import BitvectorQueryModule
from repro.scheduler import DependenceGraph, OperationDrivenScheduler


def backtracking_demo():
    print("=" * 60)
    print("assign&free: optimistic mode until the first eviction")
    machine = example_machine()
    module = BitvectorQueryModule(machine, word_cycles=4)

    b0, evicted = module.assign_free("B", 0)
    print(
        "placed B@0 -> evicted %s (update mode: %s)"
        % ([t.op for t in evicted], module.in_update_mode)
    )
    _b4, evicted = module.assign_free("B", 4)
    print(
        "placed B@4 -> evicted %s (update mode: %s)"
        % ([t.op for t in evicted], module.in_update_mode)
    )
    _b2, evicted = module.assign_free("B", 2)
    print(
        "placed B@2 -> evicted %s (update mode: %s)"
        % (
            [(t.op, t.cycle) for t in evicted],
            module.in_update_mode,
        )
    )
    assert (b0.op, b0.cycle) in [(t.op, t.cycle) for t in evicted]
    print(module.work.report())


def boundary_demo():
    print("\n" + "=" * 60)
    print("block boundaries: dangling requirements from a predecessor")
    machine = mips_r3000()
    scheduler = OperationDrivenScheduler(machine)

    block = DependenceGraph("block")
    block.add_operation("d", "div")
    block.add_operation("use", "mfhilo")
    block.add_dependence("d", "use", 35)

    clean = scheduler.schedule(block)
    print("no boundary:   div at", clean.times["d"])

    # The predecessor block issued a divide 20 cycles before this block
    # begins; its HI/LO-unit reservation dangles into cycles 0..15.
    dangling = scheduler.schedule(block, boundary=[("div", -20)])
    print("div@-20 dangling: div at", dangling.times["d"])
    assert dangling.times["d"] > clean.times["d"]


def main():
    backtracking_demo()
    boundary_demo()


if __name__ == "__main__":
    main()
