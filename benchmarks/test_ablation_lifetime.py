"""Ablation — lifetime-sensitive slot choice inside the IMS window.

Huff's lifetime-sensitive modulo scheduling (cited by the paper as [4])
reduces register pressure by placing operations close to their
neighbours.  Our IMS offers the *placement* half of that idea: when an
operation's consumers are already scheduled, scan the II window downward
from the latest feasible slot instead of upward from Estart.

The measured result is itself informative: under Rau's height-based
priority, producers almost always schedule before their consumers, so
the downward scan rarely triggers and register pressure barely moves —
the big SMS wins come from its *bidirectional ordering*, not from slot
choice alone.  The harness records both policies' schedule quality and
register pressure so the (non-)effect is visible rather than assumed.
"""

from conftest import BENCH_LOOPS

from repro.core import ForbiddenLatencyMatrix
from repro.scheduler import (
    IterativeModuloScheduler,
    max_live,
    register_requirement,
)
from repro.workloads import loop_suite

POLICIES = ("earliest", "lifetime")


def test_lifetime_placement(benchmark, machines, record):
    machine = machines["cydra5-subset"]
    matrix = ForbiddenLatencyMatrix.from_machine(machine)
    loops = loop_suite(min(400, BENCH_LOOPS))

    def run(policy):
        scheduler = IterativeModuloScheduler(
            machine, matrix=matrix, placement_policy=policy
        )
        optimal = 0
        registers = 0
        live = 0
        for graph in loops:
            result = scheduler.schedule(graph)
            optimal += result.optimal
            registers += register_requirement(result)
            live += max_live(result)
        return (
            100.0 * optimal / len(loops),
            registers / len(loops),
            live / len(loops),
        )

    outcome = {}
    for policy in POLICIES:
        if policy == "earliest":
            outcome[policy] = benchmark.pedantic(
                run, args=(policy,), rounds=1, iterations=1
            )
        else:
            outcome[policy] = run(policy)

    lines = [
        "Ablation: IMS slot-choice policy (%d loops)" % len(loops),
        "  %-10s %12s %14s %12s"
        % ("policy", "II optimal", "avg registers", "avg MaxLive"),
    ]
    for policy in POLICIES:
        optimal, registers, live = outcome[policy]
        lines.append(
            "  %-10s %11.1f%% %14.2f %12.2f"
            % (policy, optimal, registers, live)
        )
    lines.append("")
    lines.append(
        "finding: under height-order priority, consumers are rarely "
        "scheduled before their producers, so downward scanning has "
        "almost no register effect — SMS-style gains need bidirectional "
        "ordering, not just slot choice."
    )
    record("ablation_lifetime", "\n".join(lines))

    # Both policies must deliver comparable schedule quality.
    assert abs(outcome["earliest"][0] - outcome["lifetime"][0]) < 5.0
    assert (
        abs(outcome["earliest"][1] - outcome["lifetime"][1])
        / outcome["earliest"][1]
        < 0.1
    )
