"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures.  Besides
the pytest-benchmark timing rows, each harness writes its reproduced
table to ``benchmarks/results/<name>.txt`` (and echoes it to stdout when
pytest runs with ``-s``), so ``EXPERIMENTS.md`` can be checked against
fresh output at any time.
"""

from __future__ import annotations

import os

import pytest

from repro.core import ForbiddenLatencyMatrix, reduce_machine
from repro.machines import (
    alpha21064,
    cydra5,
    cydra5_subset,
    example_machine,
    mips_r3000,
)

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Loops in the scheduling benchmarks; the paper used 1327.
BENCH_LOOPS = int(os.environ.get("REPRO_BENCH_LOOPS", "1327"))


@pytest.fixture(scope="session")
def record():
    """Write one reproduced table to the results directory and stdout.

    When ``data`` is given, a machine-readable ``BENCH_<name>.json``
    companion (see ``_tables.write_bench_json``) is written next to the
    text table.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)

    def _record(name: str, text: str, data=None, meta=None) -> str:
        path = os.path.join(RESULTS_DIR, name + ".txt")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text if text.endswith("\n") else text + "\n")
        if data is not None:
            from _tables import write_bench_json

            write_bench_json(name, data, RESULTS_DIR, meta=meta)
        print("\n" + "=" * 72)
        print("[%s]" % name)
        print(text)
        return path

    return _record


@pytest.fixture(scope="session")
def machines():
    return {
        "example": example_machine(),
        "cydra5": cydra5(),
        "cydra5-subset": cydra5_subset(),
        "alpha21064": alpha21064(),
        "mips-r3000": mips_r3000(),
    }


@pytest.fixture(scope="session")
def matrices(machines):
    return {
        name: ForbiddenLatencyMatrix.from_machine(md)
        for name, md in machines.items()
    }


def _reduce_all(machine, word_cycle_list):
    """The paper's five columns: original, res-uses, and k-cycle words."""
    reductions = {"res-uses": reduce_machine(machine)}
    for k in word_cycle_list:
        reductions["%d-cycle-word" % k] = reduce_machine(
            machine, objective="word-uses", word_cycles=k
        )
    return reductions


@pytest.fixture(scope="session")
def cydra5_reductions(machines):
    return _reduce_all(machines["cydra5"], (1, 2, 4))


@pytest.fixture(scope="session")
def subset_reductions(machines):
    return _reduce_all(machines["cydra5-subset"], (1, 3, 7))


@pytest.fixture(scope="session")
def alpha_reductions(machines):
    return _reduce_all(machines["alpha21064"], (1, 4, 9))


@pytest.fixture(scope="session")
def mips_reductions(machines):
    return _reduce_all(machines["mips-r3000"], (1, 4, 9))
