"""Shared benchmark-output helpers.

The table renderer lives in the library proper; this module adds the
machine-readable companion format: every benchmark that records a
``results/<name>.txt`` table can also emit ``results/BENCH_<name>.json``
with the numbers behind the table, so perf trajectories can be tracked
by tooling instead of by diffing formatted text.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional

from repro.stats.tables import render_reduction_table

#: Schema of the ``BENCH_*.json`` documents.  Bump on breaking changes
#: and record the migration in docs/observability.md.
BENCH_SCHEMA_NAME = "repro-bench"
BENCH_SCHEMA_VERSION = 1


def bench_document(
    name: str, data: object, meta: Optional[Dict[str, object]] = None
) -> Dict[str, object]:
    """Envelope for one benchmark's machine-readable results."""
    return {
        "schema": BENCH_SCHEMA_NAME,
        "version": BENCH_SCHEMA_VERSION,
        "name": name,
        "meta": dict(meta or {}),
        "data": data,
    }


def write_bench_json(
    name: str,
    data: object,
    results_dir: str,
    meta: Optional[Dict[str, object]] = None,
) -> str:
    """Write ``BENCH_<name>.json`` next to the text table; returns path."""
    os.makedirs(results_dir, exist_ok=True)
    path = os.path.join(results_dir, "BENCH_%s.json" % name)
    document = bench_document(name, data, meta)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


__all__ = [
    "BENCH_SCHEMA_NAME",
    "BENCH_SCHEMA_VERSION",
    "bench_document",
    "render_reduction_table",
    "write_bench_json",
]
