"""Shared benchmark-output helpers.

The table renderer lives in the library proper; this module adds the
machine-readable companion format: every benchmark that records a
``results/<name>.txt`` table can also emit ``results/BENCH_<name>.json``
with the numbers behind the table, so perf trajectories can be tracked
by tooling instead of by diffing formatted text.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional, Sequence

from repro.stats.metrics import average_usages_per_op, average_word_usages
from repro.stats.tables import render_reduction_table

#: Schema of the ``BENCH_*.json`` documents.  Bump on breaking changes
#: and record the migration in docs/observability.md.
BENCH_SCHEMA_NAME = "repro-bench"
BENCH_SCHEMA_VERSION = 1


def bench_document(
    name: str, data: object, meta: Optional[Dict[str, object]] = None
) -> Dict[str, object]:
    """Envelope for one benchmark's machine-readable results."""
    return {
        "schema": BENCH_SCHEMA_NAME,
        "version": BENCH_SCHEMA_VERSION,
        "name": name,
        "meta": dict(meta or {}),
        "data": data,
    }


def write_bench_json(
    name: str,
    data: object,
    results_dir: str,
    meta: Optional[Dict[str, object]] = None,
) -> str:
    """Write ``BENCH_<name>.json`` next to the text table; returns path."""
    os.makedirs(results_dir, exist_ok=True)
    path = os.path.join(results_dir, "BENCH_%s.json" % name)
    document = bench_document(name, data, meta)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def reduction_table_data(
    machine, reductions, word_cycles: Sequence[int]
) -> Dict[str, Dict[str, float]]:
    """The numbers behind a Tables 1-4 render, keyed by column.

    Mirrors :func:`repro.stats.tables.render_reduction_table`: one entry
    per column (original, res-uses, k-cycle words), each with the
    resource count and the average (word) usages per operation — the
    paper's headline reduction metrics, machine-readable so the
    ``BENCH_*.json`` trajectory can track them per commit.
    """
    columns = [("original", machine, 1)]
    columns.append(("res-uses", reductions["res-uses"].reduced, 1))
    for k in word_cycles:
        key = "%d-cycle-word" % k
        columns.append((key, reductions[key].reduced, k))
    return {
        name: {
            "resources": md.num_resources,
            "avg_usages_per_op": average_usages_per_op(md),
            "avg_word_usages_per_op": average_word_usages(md, k),
        }
        for name, md, k in columns
    }


__all__ = [
    "BENCH_SCHEMA_NAME",
    "BENCH_SCHEMA_VERSION",
    "bench_document",
    "reduction_table_data",
    "render_reduction_table",
    "write_bench_json",
]
