"""Shim: the table renderer lives in the library proper."""

from repro.stats.tables import render_reduction_table

__all__ = ["render_reduction_table"]
