"""Scalar (acyclic) scheduling — the Multiflow-style workload.

The paper's motivation includes compilers that backtrack on *scalar*
code and hide latencies across block boundaries (Section 1).  This
harness runs the operation-driven (critical-path-first) scheduler over a
suite of synthetic basic blocks — with dangling boundary requirements
from a predecessor block — and compares query-module work between the
original and the reduced Cydra 5 subset descriptions.
"""

from conftest import BENCH_LOOPS

from repro.query import WorkCounters
from repro.scheduler import OperationDrivenScheduler
from repro.workloads import block_suite

#: Dangling requirements: a load and a store issued late in the
#: predecessor block still hold return-path resources in our cycles.
BOUNDARY = (("load_s.0", -8), ("store_s.1", -3))


def test_scalar_blocks(
    benchmark, machines, subset_reductions, record
):
    blocks = block_suite(min(300, BENCH_LOOPS))
    original = machines["cydra5-subset"]
    reduced = subset_reductions["7-cycle-word"].reduced

    def run(machine, representation, word_cycles):
        scheduler = OperationDrivenScheduler(
            machine, representation=representation, word_cycles=word_cycles
        )
        work = WorkCounters()
        lengths = []
        for graph in blocks:
            result = scheduler.schedule(graph, boundary=BOUNDARY)
            work.merge(result.work)
            lengths.append(result.length)
        return work, lengths

    original_work, original_lengths = benchmark.pedantic(
        run, args=(original, "discrete", 1), rounds=1, iterations=1
    )
    reduced_work, reduced_lengths = run(reduced, "bitvector", 7)

    # Same schedules from either description (the exactness guarantee).
    assert original_lengths == reduced_lengths

    speedup = (
        original_work.weighted_average() / reduced_work.weighted_average()
    )
    lines = [
        "Scalar block scheduling (%d blocks, with boundary dangling "
        "requirements)" % len(blocks),
        "  avg block length:        %.1f cycles"
        % (sum(original_lengths) / len(original_lengths)),
        "  original discrete work:  %.2f units/call"
        % original_work.weighted_average(),
        "  reduced bitvector work:  %.2f units/call"
        % reduced_work.weighted_average(),
        "  speedup:                 %.2fx" % speedup,
        "  identical schedules from both descriptions: yes",
    ]
    record("scalar_blocks", "\n".join(lines))
    assert speedup > 1.5
