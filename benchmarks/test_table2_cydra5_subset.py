"""Table 2 — Cydra 5 benchmark subset (the 12 operation classes the 1327
loops use): original vs res-uses vs 1/3/7-cycle-word reductions."""

from _tables import reduction_table_data, render_reduction_table

from repro.core import matrices_equal, reduce_machine

PAPER = {
    "resources": (39, 9, 9, 9, 9),
    "avg usages/op": (9.4, 2.9, 2.9, 3.6, 4.2),
    "avg word usages/op": (7.5, None, 2.6, 2.0, 1.5),
}


def test_table2(benchmark, machines, subset_reductions, record):
    machine = machines["cydra5-subset"]
    benchmark.pedantic(
        reduce_machine, args=(machine,), rounds=1, iterations=1
    )
    for reduction in subset_reductions.values():
        assert matrices_equal(machine, reduction.reduced)
    table = render_reduction_table(
        "Table 2: Cydra 5 (benchmark subset) machine descriptions",
        machine,
        subset_reductions,
        word_cycles=(1, 3, 7),
        paper=PAPER,
    )
    record(
        "table2_cydra5_subset",
        table,
        data=reduction_table_data(machine, subset_reductions, (1, 3, 7)),
        meta={"machine": machine.name, "word_cycles": [1, 3, 7]},
    )
