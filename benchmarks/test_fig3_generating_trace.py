"""Figure 3 — the step-by-step construction of the generating set for the
example machine: four elementary pairs processed by Rules 1-3."""

from repro.core import (
    ForbiddenLatencyMatrix,
    build_generating_set,
)


def test_fig3(benchmark, machines, record):
    machine = machines["example"]
    matrix = ForbiddenLatencyMatrix.from_machine(machine)

    steps = []
    benchmark(
        lambda: build_generating_set(matrix, trace=steps.append)
    )
    # benchmark reruns the callable; keep the last full trace (4 pairs).
    trace = steps[-4:]

    parts = ["Figure 3: building the generating set, pair by pair", ""]
    for index, step in enumerate(trace):
        parts.append(
            "pair %d: %s" % (index + 1, sorted(step.pair))
        )
        for app in step.applications:
            target = sorted(app.target) if app.target else "-"
            result = sorted(app.result) if app.result else "discarded"
            parts.append(
                "  rule %d on %s -> %s" % (app.rule, target, result)
            )
        parts.append("  generating set now:")
        for resource in step.resources:
            parts.append("    %s" % sorted(resource))
        parts.append("")
    text = "\n".join(parts)
    record("fig3_generating_trace", text)

    # The final set matches the paper's Figure 3d (after pruning it is
    # exactly the two maximal resources of Figure 1c).
    final = set(trace[-1].resources)
    assert frozenset({("B", 0), ("A", 1)}) in final
    assert frozenset({("B", 0), ("B", 1), ("B", 2), ("B", 3)}) in final
