"""Corpus-scale batch scheduling: the >=5x check-path work floor.

The corpus driver schedules the whole loop suite against one shared
compiled kernel, riding the columnar batch plane (``batch`` currency)
instead of per-loop per-window scans.  This benchmark pins the PR's
headline claim on the paper-scale suite: at least **5x** fewer
check-path work units (``check`` + ``check_range`` + ``first_free`` +
``batch``) than the PR-5 per-loop compiled path, with *byte-identical*
per-loop ``(II, placements, alternatives)`` signatures — the paper's
constraint-preservation bar applied to an optimization, again.

Besides the ``results/corpus.txt`` table and its machine-readable
``BENCH_corpus.json`` companion, the corpus cells are appended to the
repo-root ``BENCH_runs.json`` headline trajectory (when present) so
``repro bench compare`` and ``repro runs trend`` track them.
"""

import os
import time

import pytest
from conftest import BENCH_LOOPS

from repro.bench import BenchCase, load_result, save_result
from repro.bench.stats import summarize
from repro.query.batch import batch_backend
from repro.scheduler.corpus import CorpusScheduler
from repro.workloads import loop_suite

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
HEADLINE = os.path.join(REPO_ROOT, "BENCH_runs.json")

#: The scheduler's contention-test currencies.  The per-loop path pays
#: in ``check``/``check_range``/``first_free``; the batch plane pays in
#: ``batch`` — summing all four compares the two paths honestly.
CHECK_PATH = ("check", "check_range", "first_free", "batch")
FLOOR = 5.0


def _check_path_units(work) -> int:
    return int(sum(work.units[fn] for fn in CHECK_PATH))


def _work_map(work):
    merged = {}
    for function, units in work.units.items():
        merged["query.%s.units" % function] = float(units)
    for function, calls in work.calls.items():
        merged["query.%s.calls" % function] = float(calls)
    return merged


def _quality(result):
    done = [o for o in result.outcomes if not o.failed]
    quality = {
        "loops": float(len(result.outcomes)),
        "loops_at_mii": float(sum(1 for o in done if o.ii == o.mii)),
        "ii_total": float(sum(o.ii for o in done)),
        "mii_total": float(sum(o.mii for o in done)),
    }
    quality["mii_gap"] = quality["ii_total"] - quality["mii_total"]
    return quality


def test_corpus_batch_check_path_at_least_5x_cheaper(machines, record):
    machine = machines["cydra5-subset"]
    graphs = loop_suite(BENCH_LOOPS)

    runs, walls = {}, {}
    for mode, representation in (
        ("corpus-batch", "batch"),
        ("corpus-perloop", "compiled"),
    ):
        scheduler = CorpusScheduler(machine, representation=representation)
        start = time.perf_counter()
        runs[mode] = scheduler.schedule_suite(graphs)
        walls[mode] = time.perf_counter() - start

    batch = runs["corpus-batch"]
    perloop = runs["corpus-perloop"]

    # Constraint preservation first: every loop scheduled, and the two
    # paths agree on every loop's (II, placements, alternatives).
    assert batch.failed == 0 and perloop.failed == 0
    assert batch.signatures() == perloop.signatures()

    batch_units = _check_path_units(batch.work)
    perloop_units = _check_path_units(perloop.work)
    assert batch_units > 0
    ratio = perloop_units / batch_units
    assert ratio >= FLOOR, (
        "corpus check-path units: per-loop=%d batch=%d (ratio %.2f < %.1f)"
        % (perloop_units, batch_units, ratio, FLOOR)
    )
    compile_ratio = (
        perloop.work.units["compile"] / batch.work.units["compile"]
    )

    data = {
        "machine": machine.name,
        "loops": len(graphs),
        "backend": batch.backend,
        "floor": FLOOR,
        "check_path_currencies": list(CHECK_PATH),
        "check_path_units": {
            "corpus-batch": batch_units,
            "corpus-perloop": perloop_units,
        },
        "ratio": ratio,
        "compile_units": {
            "corpus-batch": int(batch.work.units["compile"]),
            "corpus-perloop": int(perloop.work.units["compile"]),
        },
        "compile_ratio": compile_ratio,
        "wall_s": walls,
        "signatures_identical": True,
        "work": {mode: _work_map(run.work) for mode, run in runs.items()},
    }
    text = (
        "corpus-scale batch scheduling (%d-loop suite on %s, %s backend)\n"
        "  check path (check+check_range+first_free+batch units)\n"
        "    per-loop compiled   %10d units   %8.3fs\n"
        "    corpus batch        %10d units   %8.3fs\n"
        "    ratio               %10.2fx  (floor %.1fx)\n"
        "  compile units         %10d -> %d  (%.1fx, shared kernel)\n"
        "  schedules             byte-identical (%d loops, %d at MII)\n"
        % (
            len(graphs), machine.name, batch.backend,
            perloop_units, walls["corpus-perloop"],
            batch_units, walls["corpus-batch"],
            ratio, FLOOR,
            perloop.work.units["compile"], batch.work.units["compile"],
            compile_ratio,
            batch.scheduled,
            int(_quality(batch)["loops_at_mii"]),
        )
    )
    record(
        "corpus", text, data=data,
        meta={"machine": machine.name, "loops": len(graphs),
              "backend": batch.backend},
    )

    # Append the corpus cells to the repo-root headline trajectory so
    # bench compares and runs trends see the corpus-scale numbers.
    if os.path.exists(HEADLINE):
        headline = load_result(HEADLINE)
        for mode, run in runs.items():
            headline.add_case(BenchCase(
                machine=machine.name,
                representation=mode,
                work=_work_map(run.work),
                wall=summarize([walls[mode]]),
                phases={},
                quality=_quality(run),
            ))
        save_result(HEADLINE, headline)
        reloaded = load_result(HEADLINE)
        assert "%s/corpus-batch" % machine.name in reloaded.cases


def test_backends_agree_when_numpy_present(machines):
    """Pure-python columns must replay numpy's schedules and units.

    Runs only where numpy is importable (otherwise the whole suite
    already exercises the pure backend); a forced pure-backend corpus
    pass over a small suite must produce identical signatures and
    identical merged work counters.
    """
    if batch_backend() != "numpy":
        pytest.skip("numpy not importable; pure backend already in use")

    machine = machines["cydra5-subset"]
    graphs = loop_suite(32)
    with_numpy = CorpusScheduler(machine).schedule_suite(graphs)
    forced = os.environ.get("REPRO_BATCH_BACKEND")
    os.environ["REPRO_BATCH_BACKEND"] = "pure"
    try:
        pure = CorpusScheduler(machine).schedule_suite(graphs)
    finally:
        if forced is None:
            os.environ.pop("REPRO_BATCH_BACKEND", None)
        else:
            os.environ["REPRO_BATCH_BACKEND"] = forced
    assert pure.backend == "pure" and with_numpy.backend == "numpy"
    assert pure.signatures() == with_numpy.signatures()
    assert dict(pure.work.units) == dict(with_numpy.work.units)
    assert dict(pure.work.calls) == dict(with_numpy.work.calls)
