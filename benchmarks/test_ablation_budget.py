"""Ablation — the scheduling-decision budget of the IMS (paper Section 8).

"The ratio is highly sensitive to the upper limit used by the scheduler,
e.g. an upper limit of 2N results in an average ratio of 1.14
[decisions/op] ... The scheduler may perform up to 6N scheduling
decisions" (which gave 1.52 with 9.6% of attempts exceeding the budget).
This harness sweeps the budget ratio and reproduces the direction: a
tighter budget lowers decisions per op but bumps more loops to larger
IIs.
"""

from conftest import BENCH_LOOPS

from repro.core import ForbiddenLatencyMatrix
from repro.scheduler import IterativeModuloScheduler
from repro.workloads import loop_suite

RATIOS = (1, 2, 6, 12)


def test_budget_sweep(benchmark, machines, record):
    machine = machines["cydra5-subset"]
    matrix = ForbiddenLatencyMatrix.from_machine(machine)
    loops = loop_suite(min(500, BENCH_LOOPS))

    def run(ratio):
        scheduler = IterativeModuloScheduler(
            machine, budget_ratio=ratio, matrix=matrix
        )
        results = [scheduler.schedule(graph) for graph in loops]
        decisions = sum(r.decisions_per_op for r in results) / len(results)
        optimal = sum(1 for r in results if r.optimal) / len(results)
        exceeded = sum(
            1
            for r in results
            for attempt in r.attempts
            if attempt.budget_exceeded
        ) / sum(len(r.attempts) for r in results)
        return decisions, optimal, exceeded

    rows = [
        "Ablation: IMS scheduling-decision budget (paper: 2N -> 1.14, "
        "6N -> 1.52 decisions/op)",
        "  %8s %14s %12s %18s"
        % ("budget", "decisions/op", "II optimal", "attempts over budget"),
    ]
    sweep = {}
    for ratio in RATIOS:
        if ratio == 6:
            sweep[ratio] = benchmark.pedantic(
                run, args=(ratio,), rounds=1, iterations=1
            )
        else:
            sweep[ratio] = run(ratio)
        decisions, optimal, exceeded = sweep[ratio]
        rows.append(
            "  %7dN %14.2f %11.1f%% %17.1f%%"
            % (ratio, decisions, 100 * optimal, 100 * exceeded)
        )
    record("ablation_budget", "\n".join(rows))

    # Paper's direction: smaller budgets -> fewer decisions per op,
    # and never more optimal loops.
    assert sweep[2][0] <= sweep[6][0]
    assert sweep[1][1] <= sweep[6][1] + 1e-9
    assert sweep[6][1] >= 0.9
