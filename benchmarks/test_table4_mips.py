"""Table 4 — MIPS R3000/R3010: original vs res-uses vs 1/4/9-cycle-word
reductions."""

from _tables import reduction_table_data, render_reduction_table

from repro.core import matrices_equal, reduce_machine

PAPER = {
    "resources": (22, 7, 7, 7, 7),
    "avg usages/op": (17.3, None, 8.1, 8.3, 8.5),
    "avg word usages/op": (11.0, 5.6, None, None, 1.6),
}


def test_table4(benchmark, machines, mips_reductions, record):
    machine = machines["mips-r3000"]
    benchmark.pedantic(
        reduce_machine, args=(machine,), rounds=1, iterations=1
    )
    for reduction in mips_reductions.values():
        assert matrices_equal(machine, reduction.reduced)
    table = render_reduction_table(
        "Table 4: MIPS R3000/R3010 machine descriptions",
        machine,
        mips_reductions,
        word_cycles=(1, 4, 9),
        paper=PAPER,
    )
    record(
        "table4_mips",
        table,
        data=reduction_table_data(machine, mips_reductions, (1, 4, 9)),
        meta={"machine": machine.name, "word_cycles": [1, 4, 9]},
    )
