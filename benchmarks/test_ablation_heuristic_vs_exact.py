"""Ablation — the selection heuristic vs provable optimum (paper §5).

"Although integer programming can solve these minimum cover problems,
we have found a fast and effective heuristic."  For machines small
enough to solve exactly, this harness quantifies "effective": the
heuristic's total usage count vs the branch-and-bound optimum.
"""

from repro.core import (
    ForbiddenLatencyMatrix,
    SearchExhausted,
    build_generating_set,
    exact_minimum_cover,
    prune_covered_resources,
    select_resources,
)
from repro.machines import (
    alternatives_machine,
    dense_conflict_machine,
    example_machine,
    issue_limited_machine,
    single_op_machine,
)

CASES = [
    ("paper-example", example_machine),
    ("single-op", single_op_machine),
    ("dual-pipe", alternatives_machine),
    ("dense-bus", dense_conflict_machine),
    ("vliw-2x2", lambda: issue_limited_machine(2, 2)),
    ("vliw-2x3", lambda: issue_limited_machine(2, 3)),
]


def test_heuristic_vs_exact(benchmark, record):
    def run():
        rows = []
        for name, factory in CASES:
            machine = factory()
            matrix = ForbiddenLatencyMatrix.from_machine(machine)
            pool = prune_covered_resources(build_generating_set(matrix))
            heuristic = select_resources(matrix, pool)
            try:
                exact = exact_minimum_cover(
                    matrix,
                    pool,
                    node_limit=500_000,
                    upper_bound=heuristic.total_usages + 1,
                )
                optimum = exact.total_usages
            except SearchExhausted:
                optimum = None
            rows.append((name, heuristic.total_usages, optimum))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        "Ablation: greedy selection vs exact minimum cover (res-uses)",
        "  %-14s %10s %10s %8s" % ("machine", "heuristic", "optimum", "gap"),
    ]
    for name, heuristic_usages, optimum in rows:
        if optimum is None:
            lines.append(
                "  %-14s %10d %10s %8s"
                % (name, heuristic_usages, "(search cap)", "-")
            )
            continue
        gap = heuristic_usages - optimum
        lines.append(
            "  %-14s %10d %10d %8s"
            % (name, heuristic_usages, optimum, "+%d" % gap if gap else "0")
        )
        assert heuristic_usages >= optimum
        # The paper's "fast and effective": within a usage or two.
        assert gap <= max(2, optimum // 4)
    record("ablation_heuristic_vs_exact", "\n".join(lines))
