"""Optimality audit of the Iterative Modulo Scheduler.

The paper reports 95.6% of loops scheduled at II = MII but cannot say
whether the remaining 4.4% had feasible MII schedules the heuristic
missed or genuinely needed a larger II.  With the exhaustive search we
can answer that for the small loops: for every tiny loop the IMS did
NOT schedule at MII, search exhaustively for a schedule at MII and
report how many were actually feasible.
"""

from conftest import BENCH_LOOPS

from repro.core import ForbiddenLatencyMatrix
from repro.scheduler import (
    IterativeModuloScheduler,
    SearchBudgetExceeded,
    is_ii_feasible,
)
from repro.workloads import loop_suite

MAX_OPS_FOR_AUDIT = 12


def test_ims_optimality_audit(benchmark, machines, record):
    machine = machines["cydra5-subset"]
    matrix = ForbiddenLatencyMatrix.from_machine(machine)
    scheduler = IterativeModuloScheduler(machine, matrix=matrix)
    loops = [
        graph
        for graph in loop_suite(min(600, BENCH_LOOPS))
        if graph.num_operations <= MAX_OPS_FOR_AUDIT
    ]

    def run():
        optimal = suboptimal_feasible = suboptimal_proven = unknown = 0
        for graph in loops:
            result = scheduler.schedule(graph)
            if result.optimal:
                optimal += 1
                continue
            try:
                if is_ii_feasible(machine, graph, result.mii):
                    suboptimal_feasible += 1
                else:
                    suboptimal_proven += 1
            except SearchBudgetExceeded:
                unknown += 1
        return optimal, suboptimal_feasible, suboptimal_proven, unknown

    optimal, missed, proven, unknown = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    total = len(loops)
    lines = [
        "IMS optimality audit (%d loops of <= %d ops)"
        % (total, MAX_OPS_FOR_AUDIT),
        "  scheduled at MII:                    %4d (%.1f%%)"
        % (optimal, 100 * optimal / total),
        "  II > MII, but MII was feasible:      %4d (heuristic miss)"
        % missed,
        "  II > MII, MII infeasible in window:  %4d (MII bound loose)"
        % proven,
        "  search budget exceeded:              %4d" % unknown,
    ]
    record("ims_optimality_audit", "\n".join(lines))

    assert optimal / total > 0.9
    # Heuristic misses are rare — the paper's 'fast and effective'.
    assert missed <= max(2, total // 25)
