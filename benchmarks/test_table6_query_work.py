"""Table 6 — work units per call of the contention query module's basic
functions, measured inside the Iterative Modulo Scheduler over the loop
benchmark, for five machine representations of the Cydra 5:

  original discrete | reduced discrete (res-uses) | reduced bitvector
  with 1, 2, and 4 cycle-bitvectors per word.

The paper's headline: reducing the description speeds the module 1.6x in
the discrete representation and 2.9x with 64-bit (4-cycle) words.
"""

from conftest import BENCH_LOOPS

from repro.core import ForbiddenLatencyMatrix
from repro.query import ASSIGN_FREE, CHECK, FREE, WorkCounters
from repro.scheduler import IterativeModuloScheduler
from repro.workloads import loop_suite

PAPER = """\
paper (work units/call):   original  res-uses  1-cyc-word  2-cyc-word  4-cyc-word   freq
  check                        2.62      2.06        1.90        1.25        1.11  75.6%
  assign&free                  5.68      2.15        1.75        1.67        1.63  16.0%
  free                         6.48      2.58        2.23        1.58        1.29   8.4%
  weighted sum                 3.46      2.11        1.91        1.35        1.21 100.0%"""


def _run_suite(machine, representation, word_cycles, loops, reference=None):
    from collections import Counter

    matrix = ForbiddenLatencyMatrix.from_machine(machine)
    scheduler = IterativeModuloScheduler(
        machine,
        representation=representation,
        word_cycles=word_cycles,
        matrix=matrix,
    )
    work = WorkCounters()
    iis = []
    checks = Counter()
    for graph in loops:
        result = scheduler.schedule(graph)
        work.merge(result.work)
        iis.append(result.ii)
        checks.update(result.check_distribution)
    if reference is not None:
        # The paper verified identical schedules for every description;
        # we verify identical achieved IIs.
        assert iis == reference
    return work, iis, checks


def test_table6(benchmark, machines, cydra5_reductions, record):
    loops = loop_suite(BENCH_LOOPS)
    original = machines["cydra5"]
    configs = [
        ("original", original, "discrete", 1),
        ("res-uses", cydra5_reductions["res-uses"].reduced, "discrete", 1),
        ("1-cyc-word", cydra5_reductions["1-cycle-word"].reduced, "bitvector", 1),
        ("2-cyc-word", cydra5_reductions["2-cycle-word"].reduced, "bitvector", 2),
        ("4-cyc-word", cydra5_reductions["4-cycle-word"].reduced, "bitvector", 4),
    ]

    results = {}
    reference = None
    check_distribution = None
    for name, machine, representation, k in configs:
        if name == "original":
            work, reference, check_distribution = benchmark.pedantic(
                _run_suite,
                args=(machine, representation, k, loops),
                rounds=1,
                iterations=1,
            )
        else:
            work, _iis, _checks = _run_suite(
                machine, representation, k, loops, reference=reference
            )
        results[name] = work

    names = [name for name, *_rest in configs]
    lines = [
        "Table 6: query-module work units per call "
        "(%d loops, ours)" % len(loops),
        "  %-22s" % "function"
        + "".join("%12s" % n for n in names)
        + "%7s" % "freq",
    ]
    frequencies = results["original"].frequencies()
    for function in (CHECK, ASSIGN_FREE, FREE):
        row = "  %-22s" % function
        for name in names:
            row += "%12.2f" % results[name].per_call(function)
        row += "%6.1f%%" % (100.0 * frequencies[function])
        lines.append(row)
    row = "  %-22s" % "weighted sum"
    for name in names:
        row += "%12.2f" % results[name].weighted_average()
    row += "%7s" % "100.0%"
    lines.append(row)
    lines.append("")
    lines.append(PAPER)

    # Paper Section 8 also reports the distribution of check queries per
    # scheduling decision (avg 4.74; 49.5% single, 15.1% two, ...).
    decisions = sum(check_distribution.values())
    avg_checks = (
        sum(count * times for count, times in check_distribution.items())
        / decisions
    )
    single = check_distribution.get(1, 0) / decisions
    two = check_distribution.get(2, 0) / decisions
    many = sum(
        times for count, times in check_distribution.items() if count >= 5
    ) / decisions
    lines.append("")
    lines.append(
        "check queries per scheduling decision: avg %.2f "
        "(paper 4.74); one %.1f%% (49.5%%), two %.1f%% (15.1%%), "
        "five+ %.1f%% (20.5%%)"
        % (avg_checks, 100 * single, 100 * two, 100 * many)
    )

    original_avg = results["original"].weighted_average()
    reduced_discrete = results["res-uses"].weighted_average()
    reduced_word = results["4-cyc-word"].weighted_average()
    lines.append("")
    lines.append(
        "speedup vs original: discrete %.2fx (paper 1.6x), "
        "4-cycle-word %.2fx (paper 2.9x)"
        % (original_avg / reduced_discrete, original_avg / reduced_word)
    )
    data = {
        "per_call": {
            name: {
                function: results[name].per_call(function)
                for function in (CHECK, ASSIGN_FREE, FREE)
            }
            for name in names
        },
        "weighted_average": {
            name: results[name].weighted_average() for name in names
        },
        "frequencies": frequencies,
        "checks_per_decision": {
            "avg": avg_checks,
            "one": single,
            "two": two,
            "five_plus": many,
        },
        "speedup_vs_original": {
            "res-uses": original_avg / reduced_discrete,
            "4-cyc-word": original_avg / reduced_word,
        },
    }
    record(
        "table6_query_work",
        "\n".join(lines),
        data=data,
        meta={"machine": "cydra5", "loops": len(loops)},
    )

    # Shape: the reductions make every representation cheaper, and the
    # packed bitvector is the cheapest of all.
    assert reduced_discrete < original_avg
    assert reduced_word < reduced_discrete
    assert original_avg / reduced_word > 1.5
