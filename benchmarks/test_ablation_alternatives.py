"""Ablation — alternative-operation probe policies (paper Section 7
leaves "other more efficient techniques" open).

On the PlayDoh machine — 4-way integer and 2-way float/memory
alternatives — first-fit piles early operations onto unit 0 and pays for
it in extra probe checks later; rotating or load-balancing the probe
order reduces check calls per decision at equal schedule quality.
"""

from conftest import BENCH_LOOPS

from repro.core import ForbiddenLatencyMatrix
from repro.machines import PLAYDOH_LATENCIES, PLAYDOH_MIX, playdoh
from repro.query import CHECK, POLICIES
from repro.scheduler import IterativeModuloScheduler
from repro.workloads.blockgen import generate_block


def _playdoh_loops(count):
    """Loop bodies over the PlayDoh opcode mix (reusing the block
    generator's DAG shape plus a loop-control recurrence)."""
    loops = []
    for seed in range(count):
        graph = generate_block(
            seed,
            mix=PLAYDOH_MIX,
            latencies=PLAYDOH_LATENCIES,
            name="pd%04d" % seed,
            store_opcode="st",
        )
        graph.add_operation("loopctl", "br")
        graph.add_dependence("loopctl", "loopctl", 1, distance=1)
        loops.append(graph)
    return loops


def test_alternative_policies(benchmark, record):
    machine = playdoh()
    matrix = ForbiddenLatencyMatrix.from_machine(machine)
    loops = _playdoh_loops(min(200, BENCH_LOOPS))

    def run(policy):
        scheduler = IterativeModuloScheduler(
            machine, matrix=matrix, alternative_policy=policy
        )
        checks = 0
        decisions = 0
        ii_total = 0
        for graph in loops:
            result = scheduler.schedule(graph)
            checks += result.work.calls[CHECK]
            decisions += result.total_decisions
            ii_total += result.ii
        return checks / decisions, ii_total / len(loops)

    rows = [
        "Ablation: check_with_alternatives probe policies (PlayDoh, "
        "%d loops)" % len(loops),
        "  %-12s %18s %10s" % ("policy", "checks/decision", "avg II"),
    ]
    outcomes = {}
    for policy in POLICIES:
        if policy == "first-fit":
            outcomes[policy] = benchmark.pedantic(
                run, args=(policy,), rounds=1, iterations=1
            )
        else:
            outcomes[policy] = run(policy)
        rows.append(
            "  %-12s %18.2f %10.2f"
            % (policy, outcomes[policy][0], outcomes[policy][1])
        )
    record("ablation_alternatives", "\n".join(rows))

    # Schedule quality must not regress under smarter probing.
    baseline_ii = outcomes["first-fit"][1]
    for policy in ("round-robin", "least-used"):
        assert outcomes[policy][1] <= baseline_ii * 1.05
