"""Extension — the loop suite across machines (Cydra 5 vs PlayDoh).

The paper evaluates one machine; the library's machine-agnostic design
makes the same experiment a translation away.  The identical loop shapes
are scheduled for the Cydra 5 subset and (ported) for the PlayDoh wide
VLIW; the wider machine buys lower IIs at the price of more
check-with-alternatives probes per decision.
"""

from conftest import BENCH_LOOPS

from repro.core import ForbiddenLatencyMatrix
from repro.machines import playdoh
from repro.query import CHECK
from repro.scheduler import IterativeModuloScheduler
from repro.workloads import CYDRA_TO_PLAYDOH, loop_suite, translate_graph


def test_cross_machine_suite(benchmark, machines, record):
    count = min(500, BENCH_LOOPS)
    loops = loop_suite(count)
    targets = {
        "cydra5-subset": (machines["cydra5-subset"], None),
        "playdoh": (playdoh(), CYDRA_TO_PLAYDOH),
    }

    def run():
        rows = {}
        for name, (machine, mapping) in targets.items():
            scheduler = IterativeModuloScheduler(
                machine,
                matrix=ForbiddenLatencyMatrix.from_machine(machine),
            )
            iis = []
            optimal = 0
            checks = 0
            decisions = 0
            for graph in loops:
                target_graph = (
                    translate_graph(graph, mapping, machine)
                    if mapping
                    else graph
                )
                result = scheduler.schedule(target_graph)
                iis.append(result.ii)
                optimal += result.optimal
                checks += result.work.calls[CHECK]
                decisions += result.total_decisions
            rows[name] = (
                sum(iis) / len(iis),
                100.0 * optimal / len(loops),
                checks / decisions,
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "Cross-machine loop suite (%d identical loop shapes)" % count,
        "  %-16s %8s %12s %18s"
        % ("machine", "avg II", "II optimal", "checks/decision"),
    ]
    for name, (avg_ii, optimal, checks) in rows.items():
        lines.append(
            "  %-16s %8.2f %11.1f%% %18.2f"
            % (name, avg_ii, optimal, checks)
        )
    record(
        "cross_machine_suite",
        "\n".join(lines),
        data={
            name: {
                "avg_ii": avg_ii,
                "percent_at_mii": optimal,
                "checks_per_decision": checks,
            }
            for name, (avg_ii, optimal, checks) in rows.items()
        },
        meta={"loops": count},
    )

    # The wide machine achieves lower IIs but pays more probes/decision.
    assert rows["playdoh"][0] < rows["cydra5-subset"][0] * 1.2
    assert rows["playdoh"][2] > rows["cydra5-subset"][2]
