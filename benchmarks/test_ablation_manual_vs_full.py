"""Ablation — manual-style row pruning vs the paper's full reduction.

The Cydra 5 compiler's description was *manually* optimized by deleting
physical resource rows that added no forbidden latencies (Section 6).
This harness automates that manual pass (`repro.analysis.redundancy`) and
compares it against the full synthesis on every study machine: the manual
pass helps, but the synthesized description is strictly smaller — the
quantitative case for automating reduction rather than hand-tuning.
"""

from repro.analysis import manually_optimize
from repro.core import matrices_equal, reduce_machine
from repro.stats import average_usages_per_op


def test_manual_vs_full(benchmark, machines, record):
    rows = [
        "Ablation: manual row pruning vs full reduction",
        "  %-14s %21s %21s %21s"
        % ("machine", "original", "manual pruning", "full reduction"),
        "  %-14s %10s %10s %10s %10s %10s %10s"
        % ("", "res", "uses/op", "res", "uses/op", "res", "uses/op"),
    ]
    names = ("mips-r3000", "alpha21064", "cydra5", "cydra5-subset")

    def run_all():
        outcome = {}
        for name in names:
            machine = machines[name]
            pruned, _removed = manually_optimize(machine)
            full = reduce_machine(machine).reduced
            outcome[name] = (machine, pruned, full)
        return outcome

    outcome = benchmark.pedantic(run_all, rounds=1, iterations=1)

    for name in names:
        machine, pruned, full = outcome[name]
        assert matrices_equal(machine, pruned)
        assert matrices_equal(machine, full)
        # The automated synthesis never loses to the manual pass.
        assert full.total_usages <= pruned.total_usages
        assert full.num_resources <= pruned.num_resources
        rows.append(
            "  %-14s %10d %10.1f %10d %10.1f %10d %10.1f"
            % (
                name,
                machine.num_resources,
                average_usages_per_op(machine),
                pruned.num_resources,
                average_usages_per_op(pruned),
                full.num_resources,
                average_usages_per_op(full),
            )
        )
    record("ablation_manual_vs_full", "\n".join(rows))
