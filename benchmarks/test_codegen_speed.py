"""Compiled checker vs interpreted query module (wall clock).

Production compilers compile the machine description into code (IMPACT
mdes, GCC genautomata); `repro.codegen` does the same, emitting a
specialized Python checker.  This harness measures the payoff on a
check-heavy workload over the reduced Cydra 5.
"""

import random

import pytest

from repro.codegen import compile_checker
from repro.query import BitvectorQueryModule

QUERIES = 4000


def _workload(machine):
    rng = random.Random(2024)
    ops = machine.operation_names
    return [(rng.choice(ops), rng.randint(0, 256)) for _ in range(QUERIES)]


@pytest.mark.parametrize("which", ["interpreted", "compiled"])
def test_checker_throughput(benchmark, cydra5_reductions, which):
    machine = cydra5_reductions["4-cycle-word"].reduced
    queries = _workload(machine)
    benchmark.group = "codegen-check-throughput"
    if which == "interpreted":
        module = BitvectorQueryModule(machine, word_cycles=4)
        checker = module.check
    else:
        module = compile_checker(machine, word_cycles=4).new()
        checker = module.check

    def run():
        hits = 0
        for op, cycle in queries:
            if checker(op, cycle):
                hits += 1
        return hits

    hits = benchmark(run)
    assert hits == QUERIES  # empty table: everything fits


def test_compiled_matches_interpreted(benchmark, cydra5_reductions, record):
    machine = cydra5_reductions["4-cycle-word"].reduced
    compiled = compile_checker(machine, word_cycles=4).new()
    interpreted = BitvectorQueryModule(machine, word_cycles=4)

    def run():
        rng = random.Random(7)
        compiled.reset()
        interpreted.reset()
        agreements = 0
        for _step in range(1500):
            op = rng.choice(machine.operation_names)
            cycle = rng.randint(0, 128)
            a = compiled.check(op, cycle)
            assert a == interpreted.check(op, cycle)
            agreements += 1
            if a and rng.random() < 0.5:
                compiled.assign(op, cycle)
                interpreted.assign(op, cycle)
        return agreements

    agreements = benchmark.pedantic(run, rounds=1, iterations=1)
    record(
        "codegen",
        "compiled checker agreed with the interpreted module on %d "
        "randomized queries over %s" % (agreements, machine.name),
        data={"agreements": agreements, "disagreements": 0},
        meta={"machine": machine.name, "word_cycles": 4},
    )
