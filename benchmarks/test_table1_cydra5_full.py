"""Table 1 — Cydra 5 full description: resources, usages, word usages
for the original description and four reductions (res-uses; 1/2/4-cycle
words, i.e. 32- and 64-bit packed bitvectors over 15-ish resources)."""

from _tables import reduction_table_data, render_reduction_table

from repro.core import matrices_equal, reduce_machine

PAPER = {
    "resources": (56, 15, 15, 15, 15),
    "avg usages/op": (18.2, 8.3, 8.8, 10.1, 11.4),
    "avg word usages/op": (13.2, None, None, 4.7, 3.3),
}


def test_table1(benchmark, machines, cydra5_reductions, record):
    machine = machines["cydra5"]

    # Timing row: one full res-uses reduction of the Cydra 5.
    benchmark.pedantic(
        reduce_machine, args=(machine,), rounds=1, iterations=1
    )

    for reduction in cydra5_reductions.values():
        assert matrices_equal(machine, reduction.reduced)

    table = render_reduction_table(
        "Table 1: Cydra 5 (full) machine descriptions",
        machine,
        cydra5_reductions,
        word_cycles=(1, 2, 4),
        paper=PAPER,
    )
    record(
        "table1_cydra5_full",
        table,
        data=reduction_table_data(machine, cydra5_reductions, (1, 2, 4)),
        meta={"machine": machine.name, "word_cycles": [1, 2, 4]},
    )
