"""Table 3 — DEC Alpha 21064: original vs res-uses vs 1/4/9-cycle-word
reductions (9 cycles of 7 bits fit a 64-bit word)."""

from _tables import reduction_table_data, render_reduction_table

from repro.core import matrices_equal, reduce_machine

PAPER = {
    # The scanned paper garbles some Table 3 cells; the legible ones:
    "avg usages/op": (12.8, None, 8.1, 10.9, 11.6),
    "avg word usages/op": (11.6, None, None, None, 2.0),
}


def test_table3(benchmark, machines, alpha_reductions, record):
    machine = machines["alpha21064"]
    benchmark.pedantic(
        reduce_machine, args=(machine,), rounds=1, iterations=1
    )
    for reduction in alpha_reductions.values():
        assert matrices_equal(machine, reduction.reduced)
    table = render_reduction_table(
        "Table 3: DEC Alpha 21064 machine descriptions",
        machine,
        alpha_reductions,
        word_cycles=(1, 4, 9),
        paper=PAPER,
    )
    record(
        "table3_alpha21064",
        table,
        data=reduction_table_data(machine, alpha_reductions, (1, 4, 9)),
        meta={"machine": machine.name, "word_cycles": [1, 4, 9]},
    )
