"""The cost of a wrong machine description (paper Section 1, quantified).

"Resource contentions ... may stall some of the pipelines or, in the
absence of hardware interlocks, corrupt some of the results."  This
harness schedules a block suite against three descriptions of the MIPS
R3000 and *simulates* the schedules on the true machine:

* the correct description (original or reduced — identical schedules);
* a naively weakened one missing the divide unit's hold rows — the kind
  of mistake a manual reduction makes;
* a latency-truncated one where the FP divider hold was shortened.

Correct schedules simulate cleanly; wrong ones stall (interlocked) or
corrupt (VLIW-style), which is the paper's motivation made measurable.
"""

from conftest import BENCH_LOOPS

from repro.analysis import drop_resources
from repro.core import MachineDescription, reduce_machine
from repro.machines import mips_r3000
from repro.scheduler import OperationDrivenScheduler
from repro.simulate import simulate
from repro.workloads import block_suite

MIX = (
    ("int_alu", 30),
    ("load", 20),
    ("fadd", 15),
    ("fmul_d", 10),
    ("div", 6),
    ("fdiv_d", 6),
    ("mfhilo", 6),
    ("store", 7),
)

LATENCIES = {
    "int_alu": 1, "load": 2, "fadd": 3, "fmul_d": 6, "div": 35,
    "fdiv_d": 20, "mfhilo": 2, "store": 1, "store_s": 1,
}


def _truncate_divider(machine):
    """Cut the FP divider hold from 18 to 6 cycles (a latency bug)."""
    operations = {}
    for op, table in machine.items():
        usages = {
            r: sorted(c for c in table.usage_set(r))
            for r in table.resources
        }
        if op == "fdiv_d":
            usages["fp.div"] = [c for c in usages["fp.div"] if c <= 7]
            usages["fp.busy"] = [c for c in usages["fp.busy"] if c <= 7]
        operations[op] = usages
    return MachineDescription("mips-truncated", operations)


def test_wrong_description_cost(benchmark, record):
    truth = mips_r3000()
    descriptions = {
        "correct (reduced)": reduce_machine(truth).reduced,
        "missing divide rows": drop_resources(
            truth, ["iu.multdiv", "iu.mdbusy"]
        ),
        "truncated fdiv hold": _truncate_divider(truth),
    }
    blocks = block_suite(
        min(150, BENCH_LOOPS),
        mix=MIX,
        latencies=LATENCIES,
        store_opcode="store",
    )

    def run():
        outcome = {}
        for label, description in descriptions.items():
            scheduler = OperationDrivenScheduler(description)
            stalls = conflicts = scheduled = 0
            lengths = 0
            for graph in blocks:
                result = scheduler.schedule(graph)
                placements = [
                    (result.chosen_opcodes[n], t)
                    for n, t in result.times.items()
                ]
                interlocked = simulate(truth, placements)
                corrupting = simulate(truth, placements, interlock=False)
                stalls += interlocked.stall_cycles
                conflicts += len(corrupting.conflicts)
                scheduled += len(placements)
                lengths += result.length
            outcome[label] = (stalls, conflicts, scheduled, lengths)
        return outcome

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        "Cost of a wrong machine description (%d blocks on the real "
        "MIPS R3000)" % len(blocks),
        "  %-22s %14s %18s"
        % ("description", "stall cycles", "corruption events"),
    ]
    for label, (stalls, conflicts, _n, _l) in outcome.items():
        lines.append("  %-22s %14d %18d" % (label, stalls, conflicts))
    record("wrong_description_cost", "\n".join(lines))

    assert outcome["correct (reduced)"][0] == 0
    assert outcome["correct (reduced)"][1] == 0
    assert outcome["missing divide rows"][0] > 0
    assert outcome["truncated fdiv hold"][1] > 0
