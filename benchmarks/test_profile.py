"""Profile benchmark — the ``repro.obs`` layer applied to the paper's
pipeline: reduce the Cydra-5 subset, modulo-schedule a slice of the loop
suite under tracing, and record the per-phase time/work breakdown.

``results/BENCH_profile.json`` is the first checked-in machine-readable
perf snapshot; its ``data`` field is the obs metrics document (schema
``repro-obs-metrics``), so the perf trajectory of every phase and query
function can be tracked run over run.
"""

import os

from conftest import BENCH_LOOPS

from repro.machines import cydra5_subset
from repro.obs import metrics_document, render_text
from repro.obs.profile import profile_machine

#: Loops to profile; a slice of the benchmark suite keeps the checked-in
#: snapshot quick to regenerate while exercising every phase.
PROFILE_LOOPS = int(os.environ.get("REPRO_PROFILE_LOOPS", "0")) or min(
    64, BENCH_LOOPS
)


def test_profile_snapshot(benchmark, record):
    machine = cydra5_subset()

    tracer = benchmark.pedantic(
        profile_machine,
        args=(machine,),
        kwargs={"loops": PROFILE_LOOPS},
        rounds=1,
        iterations=1,
    )

    document = metrics_document(tracer)
    record(
        "profile",
        render_text(tracer),
        data=document,
        meta={"machine": machine.name, "loops": PROFILE_LOOPS},
    )

    # Every pipeline phase must have been traced, and the query table must
    # account the same calls WorkCounters saw.
    timers = document["timers"]
    for phase in ("profile.reduce", "profile.schedule",
                  "reduce.generating_set", "sched.ims.schedule"):
        assert timers[phase]["count"] >= 1
    assert document["queries"]["check"]["calls"] > 0
    assert document["counters"]["profile.loops"] == PROFILE_LOOPS
