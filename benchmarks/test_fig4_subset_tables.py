"""Figure 4 — reservation tables of the Cydra 5 benchmark subset: the
original description vs the discrete reduction vs the 64-bit-word
bitvector reduction."""

from repro.core import matrices_equal


def _render_description(machine, limit_ops=None):
    lines = [
        "%s: %d resources, %d usages"
        % (machine.name, machine.num_resources, machine.total_usages)
    ]
    ops = machine.operation_names
    if limit_ops:
        ops = ops[:limit_ops]
    for op in ops:
        table = machine.table(op)
        lines.append("")
        lines.append("operation %s (%d usages)" % (op, table.usage_count))
        lines.append(table.render())
    return "\n".join(lines)


def test_fig4(benchmark, machines, subset_reductions, record):
    machine = machines["cydra5-subset"]
    discrete = subset_reductions["res-uses"].reduced
    bitvector = subset_reductions["7-cycle-word"].reduced

    benchmark.pedantic(
        lambda: matrices_equal(machine, bitvector), rounds=1, iterations=1
    )
    assert matrices_equal(machine, discrete)
    assert matrices_equal(machine, bitvector)

    parts = [
        "Figure 4a: original subset description",
        _render_description(machine),
        "",
        "Figure 4b: discrete (res-uses) reduction",
        _render_description(discrete),
        "",
        "Figure 4c: 64-bit bitvector (7-cycle-word) reduction",
        _render_description(bitvector),
    ]
    record("fig4_subset_tables", "\n".join(parts))
