"""Figure 1 — the paper's worked example: reducing the hypothetical
2-operation / 5-resource machine to 2 synthesized resources with 1 usage
for A and 4 for B."""

from repro.core import matrices_equal, reduce_machine


def _render(machine):
    lines = []
    for op in machine.operation_names:
        lines.append("operation %s" % op)
        lines.append(machine.table(op).render(resources=machine.resources))
        lines.append("")
    return "\n".join(lines)


def test_fig1(benchmark, machines, record):
    machine = machines["example"]
    reduction = benchmark(reduce_machine, machine)

    assert matrices_equal(machine, reduction.reduced)
    assert reduction.reduced.num_resources == 2
    assert reduction.reduced.table("A").usage_count == 1
    assert reduction.reduced.table("B").usage_count == 4

    parts = [
        "Figure 1a: original machine description "
        "(5 resources, 11 usages)",
        _render(machine),
        "Figure 1b: forbidden latency matrix",
    ]
    for op_x, op_y, latencies in reduction.matrix.pairs():
        parts.append("  F[%s][%s] = %s" % (op_x, op_y, sorted(latencies)))
    parts.append("")
    parts.append("Figure 1c: generating set of maximal resources")
    for resource in reduction.pruned_set:
        parts.append("  %s" % sorted(resource))
    parts.append("")
    parts.append(
        "Figure 1d: reduced machine description "
        "(%d resources, %d usages; paper: 2 resources, 5 usages)"
        % (reduction.reduced.num_resources, reduction.reduced.total_usages)
    )
    parts.append(_render(reduction.reduced))
    record("fig1_example", "\n".join(parts))
