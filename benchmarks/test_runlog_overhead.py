"""Runlog + sampler overhead benchmark, and the headline runs trajectory.

Two jobs:

* **Overhead pinning** — measure a full IMS schedule bare, the same run
  with a live :class:`~repro.obs.runlog.RunRecorder` finalized and
  appended to a registry, and the same run with the sampler constructed
  but never started.  Both observability costs must stay under the
  repo's <5% disabled-overhead guard (the same margin
  ``tests/test_obs_overhead.py`` enforces structurally).

* **Trajectory seeding** — run the quick bench suite through the CLI
  with ``--runlog`` live, persist the result as the repo-root headline
  ``BENCH_runs.json`` (+ ``.sum.json`` checksum sidecar via the artifact
  store), and record the registry's own view of the run alongside the
  per-cell numbers under ``benchmarks/results/``.
"""

import json
import os
import time

from conftest import RESULTS_DIR

from repro.cli import main
from repro.machines import cydra5_subset
from repro.obs.runlog import RunLog, RunRecorder
from repro.obs.sampler import StackSampler
from repro.scheduler import IterativeModuloScheduler
from repro.workloads import KERNELS

REPEATS = 7
#: Schedules per measured "invocation".  The registry appends once per
#: CLI invocation, not once per loop, so the overhead pin amortizes the
#: fixed append cost over an invocation-sized batch of work — the shape
#: ``repro schedule`` actually has.
LOOPS_PER_RUN = 150
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
HEADLINE = os.path.join(REPO_ROOT, "BENCH_runs.json")


def _best_of(run):
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return best


def test_runlog_and_sampler_overhead(tmp_path, record):
    machine = cydra5_subset()
    graph_builder = KERNELS["daxpy"]
    registry = RunLog(str(tmp_path / "runs"))

    def bare():
        for _ in range(LOOPS_PER_RUN):
            IterativeModuloScheduler(machine).schedule(graph_builder())

    def logged():
        recorder = RunRecorder("schedule", {"kernel": "daxpy"})
        for _ in range(LOOPS_PER_RUN):
            result = IterativeModuloScheduler(machine).schedule(
                graph_builder()
            )
            recorder.add_work(result.work)
            recorder.merge_quality({
                "loops": 1,
                "ii_total": result.ii,
                "mii_total": result.mii,
            })
        registry.append(recorder.finalize("ok", 0))

    def sampler_off():
        sampler = StackSampler(frames=lambda: {})
        assert not sampler.running
        for _ in range(LOOPS_PER_RUN):
            IterativeModuloScheduler(machine).schedule(graph_builder())

    baseline = _best_of(bare)
    with_runlog = _best_of(logged)
    with_sampler_off = _best_of(sampler_off)

    # The repo-wide disabled-overhead contract: 5% plus absolute slack
    # so a sub-millisecond baseline cannot flake the pin.
    margin = baseline * 1.05 + 500e-6
    assert with_runlog <= margin, (
        "runlog append overhead too high: bare=%.6fs logged=%.6fs"
        % (baseline, with_runlog)
    )
    assert with_sampler_off <= margin, (
        "sampler-off overhead too high: bare=%.6fs off=%.6fs"
        % (baseline, with_sampler_off)
    )
    assert len(registry.records()) == REPEATS

    data = {
        "baseline_s": baseline,
        "runlog_append_s": with_runlog,
        "sampler_off_s": with_sampler_off,
        "runlog_ratio": with_runlog / baseline,
        "sampler_off_ratio": with_sampler_off / baseline,
        "margin": 1.05,
        "records_appended": len(registry.records()),
    }
    text = (
        "runlog/sampler overhead (best of %d, %d IMS daxpy schedules"
        " per invocation on %s)\n"
        "  bare schedule        %.6fs\n"
        "  + runlog append      %.6fs  (x%.4f)\n"
        "  sampler off          %.6fs  (x%.4f)\n"
        "  guard: <= 1.05x + 500us absolute slack\n"
        % (
            REPEATS, LOOPS_PER_RUN, machine.name,
            baseline,
            with_runlog, with_runlog / baseline,
            with_sampler_off, with_sampler_off / baseline,
        )
    )
    record(
        "runlog_overhead", text, data=data,
        meta={"machine": machine.name, "kernel": "daxpy",
              "repeats": REPEATS, "loops_per_run": LOOPS_PER_RUN},
    )


def test_headline_runs_trajectory(tmp_path, record, capsys):
    """Seed the repo-root bench trajectory from a runlog-driven run."""
    runlog = tmp_path / "runs"
    assert main([
        "bench", "run", "--quick",
        "--output", HEADLINE,
        "--runlog", str(runlog),
    ]) == 0
    capsys.readouterr()  # the rendered result table

    # The artifact store wrote the headline plus its checksum sidecar,
    # and it loads back through the bench comparator's entry point.
    from repro.bench import load_result

    assert os.path.exists(HEADLINE)
    assert os.path.exists(HEADLINE + ".sum.json")
    result = load_result(HEADLINE)
    assert result.cases

    # The same invocation landed in the registry with the summed work.
    records = RunLog(str(runlog)).records()
    assert len(records) == 1
    bench_record = records[0]
    assert bench_record.command == "bench run"
    assert not bench_record.corrupt
    assert bench_record.units().get("check", 0) > 0

    sidecar = json.load(open(HEADLINE + ".sum.json"))
    text = (
        "headline runs trajectory\n"
        "  wrote %s (%d cases, sha256 %s)\n"
        "  registry record: command=%s outcome=%s check-units=%d\n"
        % (
            os.path.relpath(HEADLINE, REPO_ROOT),
            len(result.cases),
            sidecar["sha256"][:12],
            bench_record.command,
            bench_record.outcome,
            int(bench_record.units().get("check", 0)),
        )
    )
    record(
        "runs_trajectory", text,
        data={
            "headline": os.path.relpath(HEADLINE, REPO_ROOT),
            "cases": sorted(result.cases),
            "registry": bench_record.data,
        },
        meta={"quick": True},
    )
    assert os.path.exists(
        os.path.join(RESULTS_DIR, "BENCH_runs_trajectory.json")
    )
