"""Headline claims (abstract / Section 1):

* contention detection is 4-7x faster with the reduced descriptions
  (measured here both in work units and wall clock, per machine);
* reserved-table state shrinks to 22-90% of the original storage.

One benchmark per (machine, description) pair runs a fixed query workload
against the discrete/bitvector modules; groups let pytest-benchmark show
the original-vs-reduced ratio directly.
"""

import random

import pytest

from repro.query import BitvectorQueryModule, DiscreteQueryModule
from repro.stats import cycles_per_word


def _query_workload(machine, module_factory, queries):
    module = module_factory()
    rng = random.Random(1234)
    ops = machine.operation_names
    tokens = []
    for _ in range(queries):
        op = rng.choice(ops)
        cycle = rng.randint(0, 200)
        if module.check(op, cycle):
            tokens.append(module.assign(op, cycle))
        if len(tokens) > 48:
            module.free(tokens.pop(rng.randrange(len(tokens))))
    return module


def _workload_params():
    params = []
    for machine_name, reductions_fixture, k64 in (
        ("cydra5", "cydra5_reductions", 4),
        ("alpha21064", "alpha_reductions", 9),
        ("mips-r3000", "mips_reductions", 9),
    ):
        params.append((machine_name, reductions_fixture, "original", k64))
        params.append((machine_name, reductions_fixture, "reduced", k64))
    return params


@pytest.mark.parametrize(
    "machine_name,reductions_fixture,which,k64", _workload_params()
)
def test_query_throughput(
    benchmark, request, machines, machine_name, reductions_fixture, which, k64
):
    reductions = request.getfixturevalue(reductions_fixture)
    original = machines[machine_name]
    if which == "original":
        description = original
        factory = lambda: DiscreteQueryModule(description)  # noqa: E731
    else:
        description = reductions["%d-cycle-word" % k64].reduced
        factory = lambda: BitvectorQueryModule(  # noqa: E731
            description, word_cycles=k64
        )
    benchmark.group = "query-throughput-%s" % machine_name
    module = benchmark(
        _query_workload, original, factory, 2000
    )
    assert module.work.total_calls >= 2000


def test_memory_and_work_summary(
    benchmark,
    machines,
    cydra5_reductions,
    alpha_reductions,
    mips_reductions,
    record,
):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = [
        "Headline: reserved-table storage and per-query work",
        "  %-14s %10s %10s %9s %12s"
        % ("machine", "orig bits", "red bits", "storage", "cyc/64b-word"),
    ]
    summaries = (
        ("cydra5", cydra5_reductions, 4),
        ("alpha21064", alpha_reductions, 9),
        ("mips-r3000", mips_reductions, 9),
    )
    data = {}
    for name, reductions, k64 in summaries:
        original = machines[name]
        reduced = reductions["%d-cycle-word" % k64].reduced
        # Paper metric: bits per schedule cycle of reserved-table state.
        orig_bits = original.num_resources
        red_bits = reduced.num_resources
        lines.append(
            "  %-14s %10d %10d %8.0f%% %12d"
            % (
                name,
                orig_bits,
                red_bits,
                100.0 * red_bits / orig_bits,
                cycles_per_word(red_bits, 64),
            )
        )
        data[name] = {
            "original_bits_per_cycle": orig_bits,
            "reduced_bits_per_cycle": red_bits,
            "storage_ratio": red_bits / orig_bits,
            "cycles_per_64bit_word": cycles_per_word(red_bits, 64),
        }
        assert red_bits < orig_bits
    lines.append("")
    lines.append(
        "paper: reduced descriptions need 22-90%% of the original "
        "storage; a 64-bit word encodes 4 (Cydra 5) or 9 (MIPS, Alpha) "
        "cycles of reserved state"
    )
    record("headline_memory", "\n".join(lines), data=data)
