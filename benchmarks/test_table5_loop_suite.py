"""Table 5 — characteristics of the (synthetic) 1327-loop benchmark when
modulo-scheduled for the Cydra 5: operations per loop, achieved II,
II/MII, and scheduling decisions per operation."""

from conftest import BENCH_LOOPS

from repro.core import ForbiddenLatencyMatrix
from repro.scheduler import IterativeModuloScheduler
from repro.workloads import loop_suite

PAPER_ROWS = """\
paper (1327 Fortran loops):    min   %at-min      avg      max
  number of operations        2.00      0.4%    17.54   161.00
  initiation interval (II)    1.00     28.7%    11.52   165.00
  II/MII                      1.00     95.6%     1.01     1.50
  sched. decisions/operation  1.00     78.7%     1.52     6.00"""


def _summary(values, at_min_value):
    return {
        "min": min(values),
        "at_min": sum(1 for v in values if v <= at_min_value) / len(values),
        "avg": sum(values) / len(values),
        "max": max(values),
    }


def _row(label, values, at_min_value):
    summary = _summary(values, at_min_value)
    return "  %-26s %6.2f    %5.1f%%  %7.2f  %7.2f" % (
        label,
        summary["min"],
        100.0 * summary["at_min"],
        summary["avg"],
        summary["max"],
    )


def test_table5(benchmark, machines, record):
    machine = machines["cydra5-subset"]
    matrix = ForbiddenLatencyMatrix.from_machine(machine)
    scheduler = IterativeModuloScheduler(machine, matrix=matrix)
    loops = loop_suite(BENCH_LOOPS)

    def run():
        return [scheduler.schedule(graph) for graph in loops]

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    sizes = [float(r.num_operations) for r in results]
    iis = [float(r.ii) for r in results]
    ratios = [r.ii_over_mii for r in results]
    decisions = [r.decisions_per_op for r in results]

    lines = [
        "Table 5: %d-loop benchmark characteristics (ours)" % len(loops),
        "  %-26s %6s  %8s %8s %8s" % ("measurement", "min", "%at-min", "avg", "max"),
        _row("number of operations", sizes, min(sizes)),
        _row("initiation interval (II)", iis, min(iis)),
        _row("II/MII", ratios, 1.0),
        _row("sched. decisions/operation", decisions, 1.0),
        "",
        PAPER_ROWS,
    ]
    optimal = sum(1 for r in results if r.optimal) / len(results)
    record(
        "table5_loop_suite",
        "\n".join(lines),
        data={
            "num_operations": _summary(sizes, min(sizes)),
            "initiation_interval": _summary(iis, min(iis)),
            "ii_over_mii": _summary(ratios, 1.0),
            "decisions_per_operation": _summary(decisions, 1.0),
            "fraction_at_mii": optimal,
        },
        meta={"machine": "cydra5-subset", "loops": len(loops)},
    )

    # Shape assertions against the paper's bands.
    assert optimal > 0.9  # paper: 95.6%
    assert sum(ratios) / len(ratios) < 1.05  # paper: 1.01
    assert 1.0 <= sum(decisions) / len(decisions) < 2.5  # paper: 1.52
