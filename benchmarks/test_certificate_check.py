"""Certificate checking vs full equivalence re-verification.

The reduction cache's warm-hit claim: validating a stored preservation
certificate (soundness + coverage of the Theorem-1 witness pairs, no
matrix construction) costs a fraction of the work of
``assert_equivalent``, which re-derives both forbidden-latency matrices.
This benchmark pins that ratio per study machine and records the
numbers behind it in ``BENCH_certificates.json``.
"""

from repro.core import (
    check_certificate,
    equivalence_work_units,
    issue_certificate,
    reduce_machine,
)


def _case(machine):
    reduction = reduce_machine(machine)
    certificate = issue_certificate(reduction)
    check = check_certificate(
        certificate, machine, reduction.reduced, recompute_matrix=False
    )
    equivalence = equivalence_work_units(machine, reduction.reduced)
    return {
        "certificate_units": check.units,
        "equivalence_units": equivalence,
        "speedup": round(equivalence / max(1, check.units), 2),
        "instances": check.instances,
        "classes": check.classes,
    }


def test_certificate_check_is_cheaper_on_every_study_machine(
    machines, record
):
    rows = {name: _case(machine) for name, machine in machines.items()}
    for name, row in rows.items():
        assert row["certificate_units"] < row["equivalence_units"], name

    width = max(len(name) for name in rows)
    lines = [
        "Warm-hit verification cost (work units)",
        "",
        "%-*s %12s %12s %8s %10s %8s"
        % (
            width, "machine", "certificate", "equivalence", "speedup",
            "instances", "classes",
        ),
    ]
    for name in sorted(rows):
        row = rows[name]
        lines.append(
            "%-*s %12d %12d %7.1fx %10d %8d"
            % (
                width, name, row["certificate_units"],
                row["equivalence_units"], row["speedup"],
                row["instances"], row["classes"],
            )
        )
    record(
        "certificates",
        "\n".join(lines),
        data=rows,
        meta={"mode": "structural", "source": "test_certificate_check.py"},
    )
