"""Compiled query kernels: batched-scan work reduction under the IMS.

The compiled representation precompiles packed reservation masks and
pairwise collision bitsets, then answers the scheduler's candidate-window
scans with one batched kernel per alternative instead of one table walk
per window cycle.  This benchmark pins the headline claim: on the study
machines the IMS check path (``check`` + ``check_range``/``first_free``
units) costs at least 2x fewer work units than the per-cycle discrete
scan, with *identical* schedules (same II per loop, same placements —
the paper's constraint-preservation bar applied to an optimization).
"""

import pytest

from repro.bench.runner import deterministic_work
from repro.obs.profile import profile_machine
from repro.obs.trace import Tracer

LOOPS = 4

#: Work-unit keys of the scheduler's contention-test path.  ``check``
#: covers the per-cycle fallback; ``check_range``/``first_free`` carry
#: the batched kernels' charges (the ``first_free`` timer attributes its
#: units in the ``check_range`` currency, exported under its own key).
CHECK_PATH_KEYS = (
    "query.check.units",
    "query.check_range.units",
    "query.first_free.units",
)


def _case(machine, representation):
    tracer = Tracer()
    profile_machine(
        machine, loops=LOOPS, representation=representation, tracer=tracer
    )
    work = deterministic_work(tracer)
    check_path = sum(work.get(key, 0) for key in CHECK_PATH_KEYS)
    quality = tuple(
        work.get("profile." + key, 0)
        for key in ("loops", "loops_at_mii", "ii_total", "mii_total")
    )
    return check_path, quality, work


@pytest.mark.parametrize(
    "machine_name", ("cydra5-subset", "alpha21064")
)
def test_compiled_check_path_at_least_2x_cheaper(machines, machine_name):
    machine = machines[machine_name]
    discrete_units, discrete_quality, _ = _case(machine, "discrete")
    compiled_units, compiled_quality, _ = _case(machine, "compiled")
    # Identical schedule quality first: same loops at MII, same II total.
    assert compiled_quality == discrete_quality
    assert compiled_units > 0
    assert discrete_units >= 2 * compiled_units, (
        "check-path units: discrete=%d compiled=%d (ratio %.2f < 2.0)"
        % (discrete_units, compiled_units, discrete_units / compiled_units)
    )


def test_compiled_beats_bitvector_on_subset(machines):
    """The collision bitsets should not lose to the word-scan fast path."""
    machine = machines["cydra5-subset"]
    bitvector_units, bitvector_quality, _ = _case(machine, "bitvector")
    compiled_units, compiled_quality, _ = _case(machine, "compiled")
    assert compiled_quality == bitvector_quality
    assert compiled_units <= bitvector_units


def test_work_reduction_summary(machines, record):
    rows = [
        "Compiled query kernels: IMS check-path work units (loop suite[%d])"
        % LOOPS,
        "",
        "  %-14s %10s %10s %10s %8s %8s"
        % ("machine", "discrete", "bitvector", "compiled", "ratio", "II"),
    ]
    data = {}
    for name in ("example", "cydra5-subset", "alpha21064"):
        machine = machines[name]
        per_rep = {}
        quality = None
        for representation in ("discrete", "bitvector", "compiled"):
            units, rep_quality, _ = _case(machine, representation)
            per_rep[representation] = units
            assert quality is None or rep_quality == quality
            quality = rep_quality
        ratio = per_rep["discrete"] / max(1, per_rep["compiled"])
        rows.append(
            "  %-14s %10d %10d %10d %7.2fx %8d"
            % (
                name,
                per_rep["discrete"],
                per_rep["bitvector"],
                per_rep["compiled"],
                ratio,
                quality[2],
            )
        )
        data[name] = {
            "check_path_units": per_rep,
            "discrete_over_compiled": round(ratio, 3),
            "quality": {
                "loops": quality[0],
                "loops_at_mii": quality[1],
                "ii_total": quality[2],
                "mii_total": quality[3],
            },
        }
    record(
        "compiled_kernels",
        "\n".join(rows),
        data=data,
        meta={"loops": LOOPS},
    )
