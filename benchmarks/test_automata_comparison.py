"""Section 2 / Section 6 comparison against finite-state automata:

* monolithic automata (Proebsting-Fraser) are exact but their state count
  grows quickly with pipeline depth — our MIPS model exceeds a 200k-state
  budget, while the paper cites 6175 states for the leaner original;
* factored automata (Mueller / Bala-Rubin) shrink the tables at the cost
  of one lookup per factor;
* a reduced bitvector description needs only ``resources`` bits per
  schedule cycle of stored state, vs one (or two, forward+reverse)
  automaton states per cycle;
* inserting into the middle of a schedule forces the automaton module to
  re-propagate states, costing far more than an append — the reservation
  table modules are position-independent.
"""

import pytest

from repro.automata import (
    AutomatonQueryModule,
    AutomatonTooLarge,
    FactoredAutomata,
    PipelineAutomaton,
)
from repro.query import CHECK, BitvectorQueryModule


def test_state_counts(benchmark, machines, mips_reductions, record):
    example = machines["example"]
    mips = machines["mips-r3000"]

    monolithic_example = benchmark(PipelineAutomaton.build, example)

    lines = ["Automata vs reduced reservation tables", ""]
    lines.append(
        "example machine: monolithic automaton has %d states, %d transitions"
        % (monolithic_example.num_states, monolithic_example.num_transitions)
    )
    from repro.automata import minimize

    minimized = minimize(monolithic_example)
    lines.append(
        "example machine: minimized to %d states (Proebsting-Fraser's "
        "construction is minimal by design; naive pending-set states "
        "overshoot %.0fx)"
        % (
            minimized.num_states,
            monolithic_example.num_states / minimized.num_states,
        )
    )

    try:
        PipelineAutomaton.build(mips, max_states=200_000)
        lines.append("mips-r3000: monolithic automaton built (unexpected)")
        blew_up = False
    except AutomatonTooLarge:
        blew_up = True
        lines.append(
            "mips-r3000: monolithic automaton exceeds 200,000 states "
            "(paper cites 6,175 for Proebsting-Fraser's leaner original)"
        )
    assert blew_up

    factored = FactoredAutomata.build(mips, mode="unit")
    lines.append(
        "mips-r3000: unit-factored automata: %d factors, %d total states "
        "(largest factor %d), ~%d KiB of tables"
        % (
            factored.num_factors,
            factored.num_states,
            factored.max_factor_states,
            factored.memory_bytes() // 1024,
        )
    )

    reduced = mips_reductions["9-cycle-word"].reduced
    lines.append(
        "mips-r3000 reduced bitvector: %d bits of reserved state per "
        "cycle (vs >= 8 bits per cached automaton state per cycle, "
        "x2 for a forward+reverse pair)"
        % reduced.num_resources
    )
    record(
        "automata_comparison",
        "\n".join(lines),
        data={
            "example_monolithic_states": monolithic_example.num_states,
            "example_monolithic_transitions": (
                monolithic_example.num_transitions
            ),
            "example_minimized_states": minimized.num_states,
            "mips_monolithic_exceeds": 200_000,
            "mips_factored_factors": factored.num_factors,
            "mips_factored_states": factored.num_states,
            "mips_factored_max_factor_states": factored.max_factor_states,
            "mips_factored_memory_bytes": factored.memory_bytes(),
            "mips_reduced_bits_per_cycle": reduced.num_resources,
        },
        meta={"machines": ["example", "mips-r3000"]},
    )


def test_insertion_cost_vs_bitvector(benchmark, machines, record):
    """Middle-insertion work: automaton re-propagation vs bitvector ANDs."""
    machine = machines["example"]
    automaton = PipelineAutomaton.build(machine)

    def build_schedule(module):
        for cycle in (0, 8, 16, 24, 32):
            module.assign("B", cycle)
        return module

    aqm = build_schedule(AutomatonQueryModule(machine, automaton=automaton))
    bvq = build_schedule(BitvectorQueryModule(machine, word_cycles=4))

    benchmark(aqm.check, "B", 4)

    aqm.work.reset()
    bvq.work.reset()
    for cycle in (4, 12, 20, 28):
        aqm.check("B", cycle)
        bvq.check("B", cycle)
    automaton_units = aqm.work.units[CHECK]
    bitvector_units = bvq.work.units[CHECK]
    text = (
        "middle-insertion checks (4 probes into a 5-op schedule):\n"
        "  automaton module: %d work units (state re-propagation)\n"
        "  4-cycle bitvector module: %d work units (word tests)\n"
        "ratio: %.1fx in favour of reservation tables"
        % (
            automaton_units,
            bitvector_units,
            automaton_units / max(1, bitvector_units),
        )
    )
    record(
        "automata_insertion_cost",
        text,
        data={
            "automaton_check_units": automaton_units,
            "bitvector_check_units": bitvector_units,
            "ratio": automaton_units / max(1, bitvector_units),
        },
        meta={"machine": "example", "probes": 4},
    )
    assert automaton_units > bitvector_units
